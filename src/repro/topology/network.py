"""The payment channel network graph container.

:class:`PCNetwork` wraps a :class:`networkx.Graph` whose edges carry
:class:`~repro.topology.channel.PaymentChannel` objects and whose nodes carry
a *role* (``"client"``, ``"candidate"`` or ``"hub"``).  It provides the graph
queries the placement and routing layers need: hop counts, shortest paths,
per-direction liquidity views and snapshot/restore of all channel balances so
that a single topology can be replayed under several routing schemes.

The path/distance helpers run on one of two execution backends behind the
repo-wide ``backend="python"|"numpy"`` knob: the networkx walks below are
the scalar reference, and :mod:`repro.topology.graph_backend` mirrors the
graph into CSR arrays (rebuilt lazily whenever ``topology_version`` moves)
for ``scipy.sparse.csgraph``-batched BFS and array-backed path search with
identical results, tie-breaks included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.topology.channel import NodeId, PaymentChannel

if TYPE_CHECKING:  # imported lazily to keep module import light
    from repro.topology.graph_backend import GraphArrays

ROLE_CLIENT = "client"
ROLE_CANDIDATE = "candidate"
ROLE_HUB = "hub"
_VALID_ROLES = (ROLE_CLIENT, ROLE_CANDIDATE, ROLE_HUB)

#: Execution backends of the path/distance helpers.
VALID_BACKENDS = ("python", "numpy")


class PCNetwork:
    """A payment channel network: nodes, roles and funded channels.

    The container is deliberately independent of any routing scheme; routing
    and placement code read liquidity and topology through this API and only
    mutate state through channel operations.

    Args:
        backend: Default execution backend of the path/distance helpers
            (``"numpy"`` mirrors the graph into CSR arrays, ``"python"``
            walks networkx structures); every helper also takes a per-call
            override.
    """

    def __init__(self, backend: str = "numpy") -> None:
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}")
        self._graph = nx.Graph()
        #: Bumped on every channel addition/removal.  Fast-path layers (path
        #: catalogs, balance array mirrors) key their caches on this counter
        #: so topology dynamics invalidate them without explicit wiring.
        self.topology_version = 0
        self.backend = backend
        self._graph_arrays: Optional["GraphArrays"] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeId, role: str = ROLE_CLIENT, **attrs: object) -> None:
        """Add a node with a role (client, candidate or hub)."""
        if role not in _VALID_ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {_VALID_ROLES}")
        self._graph.add_node(node, role=role, **attrs)

    def add_channel(
        self,
        node_a: NodeId,
        node_b: NodeId,
        balance_a: float,
        balance_b: Optional[float] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
    ) -> PaymentChannel:
        """Open a channel between two existing nodes and return it.

        Args:
            node_a: First endpoint (must already be in the network).
            node_b: Second endpoint (must already be in the network).
            balance_a: Funds deposited on ``node_a``'s side.
            balance_b: Funds deposited on ``node_b``'s side; defaults to
                ``balance_a`` (symmetric funding, as in the paper's setup).
            base_fee: Flat forwarding fee.
            fee_rate: Proportional forwarding fee.
        """
        for node in (node_a, node_b):
            if node not in self._graph:
                raise KeyError(f"node {node!r} is not part of the network")
        if self._graph.has_edge(node_a, node_b):
            raise ValueError(f"channel {node_a!r}-{node_b!r} already exists")
        if balance_b is None:
            balance_b = balance_a
        channel = PaymentChannel(node_a, node_b, balance_a, balance_b, base_fee, fee_rate)
        self._graph.add_edge(node_a, node_b, channel=channel)
        self.topology_version += 1
        return channel

    def remove_channel(self, node_a: NodeId, node_b: NodeId) -> Dict[NodeId, float]:
        """Close and remove the channel between two nodes, returning the settlement."""
        channel = self.channel(node_a, node_b)
        settlement = channel.close()
        self._graph.remove_edge(node_a, node_b)
        self.topology_version += 1
        return settlement

    def set_role(self, node: NodeId, role: str) -> None:
        """Change a node's role (e.g. promote a candidate to a hub)."""
        if role not in _VALID_ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {_VALID_ROLES}")
        if node not in self._graph:
            raise KeyError(f"node {node!r} is not part of the network")
        self._graph.nodes[node]["role"] = role

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (channels live on the ``channel`` edge attr)."""
        return self._graph

    def nodes(self, role: Optional[str] = None) -> List[NodeId]:
        """All nodes, optionally filtered by role."""
        if role is None:
            return list(self._graph.nodes)
        return [n for n, data in self._graph.nodes(data=True) if data.get("role") == role]

    def clients(self) -> List[NodeId]:
        """Nodes with the client role."""
        return self.nodes(ROLE_CLIENT)

    def candidates(self) -> List[NodeId]:
        """Nodes eligible to be placed as smooth nodes (candidates and hubs)."""
        return [
            n
            for n, data in self._graph.nodes(data=True)
            if data.get("role") in (ROLE_CANDIDATE, ROLE_HUB)
        ]

    def hubs(self) -> List[NodeId]:
        """Nodes currently acting as smooth nodes (PCHs)."""
        return self.nodes(ROLE_HUB)

    def role(self, node: NodeId) -> str:
        """The role of ``node``."""
        return self._graph.nodes[node]["role"]

    def has_node(self, node: NodeId) -> bool:
        """Whether the node exists."""
        return node in self._graph

    def has_channel(self, node_a: NodeId, node_b: NodeId) -> bool:
        """Whether a channel exists between two nodes."""
        return self._graph.has_edge(node_a, node_b)

    def channel(self, node_a: NodeId, node_b: NodeId) -> PaymentChannel:
        """The channel object between two adjacent nodes."""
        try:
            return self._graph.edges[node_a, node_b]["channel"]
        except KeyError:
            raise KeyError(f"no channel between {node_a!r} and {node_b!r}") from None

    def channels(self) -> Iterator[PaymentChannel]:
        """Iterate over every channel in the network."""
        for _, _, data in self._graph.edges(data=True):
            yield data["channel"]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Direct channel partners of ``node``."""
        return list(self._graph.neighbors(node))

    def degree(self, node: NodeId) -> int:
        """Number of channels attached to ``node``."""
        return int(self._graph.degree(node))

    def node_count(self) -> int:
        """Number of nodes in the network."""
        return self._graph.number_of_nodes()

    def channel_count(self) -> int:
        """Number of channels in the network."""
        return self._graph.number_of_edges()

    def is_connected(self) -> bool:
        """Whether the channel graph is a single connected component."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def total_funds(self) -> float:
        """Total collateral committed to all channels."""
        return sum(channel.capacity for channel in self.channels())

    def available(self, sender: NodeId, receiver: NodeId) -> float:
        """Spendable funds in the ``sender -> receiver`` direction of their channel."""
        return self.channel(sender, receiver).balance(sender)

    # ------------------------------------------------------------------ #
    # path / distance helpers
    # ------------------------------------------------------------------ #
    def resolve_backend(self, backend: Optional[str] = None) -> str:
        """The effective backend of one call (per-call override or default)."""
        resolved = backend or self.backend
        if resolved not in VALID_BACKENDS:
            raise ValueError(f"unknown backend {resolved!r}; expected one of {VALID_BACKENDS}")
        return resolved

    def graph_arrays(self) -> "GraphArrays":
        """The CSR mirror of the current topology version.

        Rebuilt lazily whenever ``topology_version`` moves, following the
        repo-wide invalidation convention; balance freshness is the mirror's
        own concern (see :meth:`GraphArrays.refresh_balances`).
        """
        from repro.topology.graph_backend import GraphArrays

        cached = self._graph_arrays
        if cached is None or cached.version != self.topology_version:
            cached = GraphArrays(self)
            self._graph_arrays = cached
        return cached

    def topology_fingerprint(self) -> str:
        """Stable hash of the node and edge sets (persistent-cache key)."""
        from repro.topology.graph_backend import topology_fingerprint

        return topology_fingerprint(self)

    def hop_count(self, source: NodeId, target: NodeId, backend: Optional[str] = None) -> int:
        """Number of hops on the shortest path from ``source`` to ``target``.

        Raises ``networkx.NetworkXNoPath`` if the nodes are disconnected.
        """
        if source == target:
            return 0
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().hop_count(source, target)
        return nx.shortest_path_length(self._graph, source, target)

    def hop_counts_from(self, source: NodeId, backend: Optional[str] = None) -> Dict[NodeId, int]:
        """Hop count from ``source`` to every reachable node."""
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().hop_counts_from(source)
        return dict(nx.single_source_shortest_path_length(self._graph, source))

    def all_pairs_hop_counts(
        self, backend: Optional[str] = None
    ) -> Dict[NodeId, Dict[NodeId, int]]:
        """Hop-count matrix for the whole network (BFS from every node)."""
        if self.resolve_backend(backend) == "numpy":
            arrays = self.graph_arrays()
            node_ids = arrays.node_ids
            distances = arrays.distances_from(range(len(node_ids)))
            result: Dict[NodeId, Dict[NodeId, int]] = {}
            for row, source in enumerate(node_ids):
                reachable = np.nonzero(np.isfinite(distances[row]))[0]
                result[source] = {
                    node_ids[column]: int(distances[row, column]) for column in reachable
                }
            return result
        return {source: lengths for source, lengths in nx.all_pairs_shortest_path_length(self._graph)}

    def hop_count_rows(self, sources: Sequence[NodeId]):
        """Batched hop counts: ``(node order, distances array)`` for ``sources``.

        One C-level BFS sweep for all sources (the placement cost probe's
        fast path); row ``i`` holds the hop counts from ``sources[i]`` to
        every node in the returned node order, ``inf`` where unreachable.
        """
        arrays = self.graph_arrays()
        return list(arrays.node_ids), arrays.distances_from(arrays.rows_of(sources))

    def shortest_path(
        self, source: NodeId, target: NodeId, backend: Optional[str] = None
    ) -> List[NodeId]:
        """One shortest (fewest-hops) path between two nodes."""
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().shortest_path(source, target)
        return nx.shortest_path(self._graph, source, target)

    def shortest_paths(
        self, source: NodeId, target: NodeId, k: int, backend: Optional[str] = None
    ) -> List[List[NodeId]]:
        """Up to ``k`` loop-free shortest paths (by hop count) between two nodes."""
        if k <= 0:
            return []
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().k_shortest_paths(source, target, k)
        generator = nx.shortest_simple_paths(self._graph, source, target)
        paths: List[List[NodeId]] = []
        for path in generator:
            paths.append(list(path))
            if len(paths) >= k:
                break
        return paths

    def path_capacity(self, path: Sequence[NodeId]) -> float:
        """Bottleneck spendable funds along a directed path.

        A path with a missing hop (e.g. a channel closed by network dynamics
        after the path was cached) has capacity 0.0 rather than raising, so
        routing layers holding stale paths simply skip them.
        """
        if len(path) < 2:
            return 0.0
        bottleneck = float("inf")
        for i in range(len(path) - 1):
            if not self._graph.has_edge(path[i], path[i + 1]):
                return 0.0
            bottleneck = min(bottleneck, self.channel(path[i], path[i + 1]).balance(path[i]))
        return bottleneck

    def subgraph_view(self) -> nx.Graph:
        """A read-only copy of the channel graph topology (no channel objects)."""
        return nx.Graph(self._graph.edges())

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]:
        """Capture every channel's balances so the topology can be replayed."""
        return {
            (channel.node_a, channel.node_b): channel.snapshot() for channel in self.channels()
        }

    def restore(self, snapshot: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]) -> None:
        """Restore channel balances captured by :meth:`snapshot`."""
        for (node_a, node_b), balances in snapshot.items():
            self.channel(node_a, node_b).restore(balances)

    def release_all_locks(self) -> int:
        """Release every outstanding lock in the network (aborting in-flight payments).

        Used by the experiment harness before restoring a snapshot so that a
        scheme that still had units in flight does not poison the next run.
        Returns the number of locks released.
        """
        released = 0
        for channel in self.channels():
            for lock in list(channel.locks()):
                channel.release(lock.lock_id)
                released += 1
        return released

    def reset_stats(self) -> None:
        """Clear every channel's lifetime statistics."""
        for channel in self.channels():
            channel.stats.__init__()

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        channel_size: float = 100.0,
        candidate_nodes: Optional[Iterable[NodeId]] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
        backend: str = "numpy",
    ) -> "PCNetwork":
        """Build a PCN from a plain topology graph with uniform channel sizes.

        Args:
            graph: Topology; each edge becomes a channel.
            channel_size: Funds deposited *per direction* of every channel.
            candidate_nodes: Nodes to mark as hub candidates (others are clients).
            base_fee: Flat fee applied to every channel.
            fee_rate: Proportional fee applied to every channel.
            backend: Default path/distance helper backend of the network.
        """
        candidates = set(candidate_nodes or ())
        network = cls(backend=backend)
        for node in graph.nodes:
            role = ROLE_CANDIDATE if node in candidates else ROLE_CLIENT
            network.add_node(node, role=role)
        for node_a, node_b in graph.edges:
            network.add_channel(node_a, node_b, channel_size, channel_size, base_fee, fee_rate)
        return network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PCNetwork(nodes={self.node_count()}, channels={self.channel_count()}, "
            f"hubs={len(self.hubs())})"
        )
