"""The payment channel network graph container.

:class:`PCNetwork` stores nodes (with a *role*: ``"client"``,
``"candidate"`` or ``"hub"``) and funded channels in plain insertion-ordered
dict-of-dicts adjacency -- the same structure networkx uses internally, so
neighbor iteration order (and therefore every path tie-break downstream) is
identical to the historical networkx-backed implementation.  A real
:class:`networkx.Graph` is only materialized *lazily*, as a cached mirror,
when a scalar (``backend="python"``) helper actually walks it; the numpy
backend and the CSR mirrors never touch networkx at all.  Networks built for
the xl scale tier pass ``lean=True``, which forbids the mirror outright so a
100k-node run provably never pays for networkx structures.

The path/distance helpers run on one of two execution backends behind the
repo-wide ``backend="python"|"numpy"`` knob: the networkx walks below are
the scalar reference, and :mod:`repro.topology.graph_backend` mirrors the
adjacency into CSR arrays (rebuilt lazily whenever ``topology_version``
moves) for ``scipy.sparse.csgraph``-batched BFS and array-backed path
search with identical results, tie-breaks included.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.topology.channel import NodeId, PaymentChannel

if TYPE_CHECKING:  # imported lazily to keep module import light
    from repro.topology.graph_backend import GraphArrays

ROLE_CLIENT = "client"
ROLE_CANDIDATE = "candidate"
ROLE_HUB = "hub"
_VALID_ROLES = (ROLE_CLIENT, ROLE_CANDIDATE, ROLE_HUB)

#: Execution backends of the path/distance helpers.
VALID_BACKENDS = ("python", "numpy")


class PCNetwork:
    """A payment channel network: nodes, roles and funded channels.

    The container is deliberately independent of any routing scheme; routing
    and placement code read liquidity and topology through this API and only
    mutate state through channel operations.

    Args:
        backend: Default execution backend of the path/distance helpers
            (``"numpy"`` mirrors the graph into CSR arrays, ``"python"``
            walks networkx structures); every helper also takes a per-call
            override.
        lean: Forbid the networkx mirror entirely (CSR-only mode).  Lean
            networks serve the xl scale tier: every query must run on the
            ``numpy`` backend, and accessing :attr:`graph` raises instead
            of silently materializing a 100k-node networkx structure.
    """

    def __init__(self, backend: str = "numpy", lean: bool = False) -> None:
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}")
        #: Node -> attribute dict (``role`` plus free-form attrs), insertion order.
        self._node_attrs: Dict[NodeId, Dict[str, object]] = {}
        #: Node -> (neighbor -> channel), both layers insertion-ordered --
        #: exactly the dict-of-dicts shape networkx keeps, so adjacency
        #: iteration order matches the historical nx-backed container.
        self._adj: Dict[NodeId, Dict[NodeId, PaymentChannel]] = {}
        self._channel_count = 0
        #: Bumped on every channel addition/removal.  Fast-path layers (path
        #: catalogs, balance array mirrors) key their caches on this counter
        #: so topology dynamics invalidate them without explicit wiring.
        self.topology_version = 0
        self.backend = backend
        self.lean = lean
        #: Read-only ``(indptr, indices)`` CSR views set by the shared-memory
        #: reconstruction path; :class:`GraphArrays` aliases them (while the
        #: topology is untouched) instead of keeping per-process copies.
        self.shared_csr: Optional[Tuple[object, object]] = None
        self._graph_arrays: Optional["GraphArrays"] = None
        self._mirror: Optional[nx.Graph] = None
        self._mirror_version = -1

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeId, role: str = ROLE_CLIENT, **attrs: object) -> None:
        """Add a node with a role (client, candidate or hub)."""
        if role not in _VALID_ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {_VALID_ROLES}")
        existing = self._node_attrs.get(node)
        if existing is None:
            self._node_attrs[node] = {"role": role, **attrs}
            self._adj[node] = {}
        else:  # networkx semantics: re-adding updates attributes in place
            existing["role"] = role
            existing.update(attrs)
        self._mirror = None

    def add_channel(
        self,
        node_a: NodeId,
        node_b: NodeId,
        balance_a: float,
        balance_b: Optional[float] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
    ) -> PaymentChannel:
        """Open a channel between two existing nodes and return it.

        Args:
            node_a: First endpoint (must already be in the network).
            node_b: Second endpoint (must already be in the network).
            balance_a: Funds deposited on ``node_a``'s side.
            balance_b: Funds deposited on ``node_b``'s side; defaults to
                ``balance_a`` (symmetric funding, as in the paper's setup).
            base_fee: Flat forwarding fee.
            fee_rate: Proportional forwarding fee.
        """
        for node in (node_a, node_b):
            if node not in self._node_attrs:
                raise KeyError(f"node {node!r} is not part of the network")
        if node_b in self._adj[node_a]:
            raise ValueError(f"channel {node_a!r}-{node_b!r} already exists")
        if balance_b is None:
            balance_b = balance_a
        channel = PaymentChannel(node_a, node_b, balance_a, balance_b, base_fee, fee_rate)
        self._adj[node_a][node_b] = channel
        self._adj[node_b][node_a] = channel
        self._channel_count += 1
        self.topology_version += 1
        return channel

    def remove_channel(self, node_a: NodeId, node_b: NodeId) -> Dict[NodeId, float]:
        """Close and remove the channel between two nodes, returning the settlement."""
        channel = self.channel(node_a, node_b)
        settlement = channel.close()
        del self._adj[node_a][node_b]
        del self._adj[node_b][node_a]
        self._channel_count -= 1
        self.topology_version += 1
        return settlement

    def set_role(self, node: NodeId, role: str) -> None:
        """Change a node's role (e.g. promote a candidate to a hub)."""
        if role not in _VALID_ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {_VALID_ROLES}")
        if node not in self._node_attrs:
            raise KeyError(f"node {node!r} is not part of the network")
        self._node_attrs[node]["role"] = role
        self._mirror = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """A networkx mirror of the network (channels on the ``channel`` edge attr).

        Built lazily and cached per ``topology_version``; the mirror
        reproduces node order *and* per-node adjacency order exactly, so
        scalar networkx walks tie-break identically to the CSR backend.
        Lean (CSR-only) networks raise instead -- materializing networkx at
        xl scale is precisely what lean mode exists to prevent.
        """
        if self.lean:
            raise RuntimeError(
                "this network is lean (CSR-only): the networkx mirror is "
                "disabled; use backend='numpy' queries"
            )
        mirror = self._mirror
        if mirror is None or self._mirror_version != self.topology_version:
            mirror = nx.Graph()
            mirror.add_nodes_from(self._node_attrs.items())
            adj = mirror._adj
            data_of: Dict[int, Dict[str, object]] = {}
            for node, neighbors in self._adj.items():
                row = adj[node]
                for neighbor, channel in neighbors.items():
                    data = data_of.get(id(channel))
                    if data is None:
                        data = {"channel": channel}
                        data_of[id(channel)] = data
                    row[neighbor] = data
            self._mirror = mirror
            self._mirror_version = self.topology_version
        return mirror

    @property
    def nx_materialized(self) -> bool:
        """Whether a networkx mirror is currently materialized (test probe)."""
        return self._mirror is not None

    @property
    def adj(self) -> Mapping[NodeId, Mapping[NodeId, PaymentChannel]]:
        """Read-only view of the adjacency: node -> (neighbor -> channel).

        Iteration order is node/channel insertion order (the same order the
        historical networkx container exposed); callers must not mutate the
        returned mappings.
        """
        return self._adj

    def nodes(self, role: Optional[str] = None) -> List[NodeId]:
        """All nodes, optionally filtered by role."""
        if role is None:
            return list(self._node_attrs)
        return [n for n, data in self._node_attrs.items() if data.get("role") == role]

    def clients(self) -> List[NodeId]:
        """Nodes with the client role."""
        return self.nodes(ROLE_CLIENT)

    def candidates(self) -> List[NodeId]:
        """Nodes eligible to be placed as smooth nodes (candidates and hubs)."""
        return [
            n
            for n, data in self._node_attrs.items()
            if data.get("role") in (ROLE_CANDIDATE, ROLE_HUB)
        ]

    def hubs(self) -> List[NodeId]:
        """Nodes currently acting as smooth nodes (PCHs)."""
        return self.nodes(ROLE_HUB)

    def role(self, node: NodeId) -> str:
        """The role of ``node``."""
        return self._node_attrs[node]["role"]

    def node_attrs(self, node: NodeId) -> Dict[str, object]:
        """The attribute dict of ``node`` (role plus free-form attrs)."""
        return self._node_attrs[node]

    def has_node(self, node: NodeId) -> bool:
        """Whether the node exists."""
        return node in self._node_attrs

    def has_channel(self, node_a: NodeId, node_b: NodeId) -> bool:
        """Whether a channel exists between two nodes."""
        neighbors = self._adj.get(node_a)
        return neighbors is not None and node_b in neighbors

    def channel(self, node_a: NodeId, node_b: NodeId) -> PaymentChannel:
        """The channel object between two adjacent nodes."""
        try:
            return self._adj[node_a][node_b]
        except KeyError:
            raise KeyError(f"no channel between {node_a!r} and {node_b!r}") from None

    def channels(self) -> Iterator[PaymentChannel]:
        """Iterate over every channel, in networkx ``edges()`` enumeration order."""
        seen: set = set()
        for node, neighbors in self._adj.items():
            for neighbor, channel in neighbors.items():
                if neighbor not in seen:
                    yield channel
            seen.add(node)

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Direct channel partners of ``node``."""
        return list(self._adj[node])

    def degree(self, node: NodeId) -> int:
        """Number of channels attached to ``node``."""
        return len(self._adj[node])

    def node_count(self) -> int:
        """Number of nodes in the network."""
        return len(self._node_attrs)

    def channel_count(self) -> int:
        """Number of channels in the network."""
        return self._channel_count

    def is_connected(self) -> bool:
        """Whether the channel graph is a single connected component."""
        total = len(self._node_attrs)
        if total == 0:
            return True
        start = next(iter(self._adj))
        seen = {start}
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            for neighbor in self._adj[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == total

    def total_funds(self) -> float:
        """Total collateral committed to all channels."""
        return sum(channel.capacity for channel in self.channels())

    def available(self, sender: NodeId, receiver: NodeId) -> float:
        """Spendable funds in the ``sender -> receiver`` direction of their channel."""
        return self.channel(sender, receiver).balance(sender)

    # ------------------------------------------------------------------ #
    # path / distance helpers
    # ------------------------------------------------------------------ #
    def resolve_backend(self, backend: Optional[str] = None) -> str:
        """The effective backend of one call (per-call override or default)."""
        resolved = backend or self.backend
        if resolved not in VALID_BACKENDS:
            raise ValueError(f"unknown backend {resolved!r}; expected one of {VALID_BACKENDS}")
        return resolved

    def graph_arrays(self) -> "GraphArrays":
        """The CSR mirror of the current topology version.

        Rebuilt lazily whenever ``topology_version`` moves, following the
        repo-wide invalidation convention; balance freshness is the mirror's
        own concern (see :meth:`GraphArrays.refresh_balances`).
        """
        from repro.topology.graph_backend import GraphArrays

        cached = self._graph_arrays
        if cached is None or cached.version != self.topology_version:
            cached = GraphArrays(self)
            self._graph_arrays = cached
        return cached

    def topology_fingerprint(self) -> str:
        """Stable hash of the node and edge sets (persistent-cache key)."""
        from repro.topology.graph_backend import topology_fingerprint

        return topology_fingerprint(self)

    def hop_count(self, source: NodeId, target: NodeId, backend: Optional[str] = None) -> int:
        """Number of hops on the shortest path from ``source`` to ``target``.

        Raises ``networkx.NetworkXNoPath`` if the nodes are disconnected.
        """
        if source == target:
            return 0
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().hop_count(source, target)
        return nx.shortest_path_length(self.graph, source, target)

    def hop_counts_from(self, source: NodeId, backend: Optional[str] = None) -> Dict[NodeId, int]:
        """Hop count from ``source`` to every reachable node."""
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().hop_counts_from(source)
        return dict(nx.single_source_shortest_path_length(self.graph, source))

    def all_pairs_hop_counts(
        self, backend: Optional[str] = None
    ) -> Dict[NodeId, Dict[NodeId, int]]:
        """Hop-count matrix for the whole network (BFS from every node)."""
        if self.resolve_backend(backend) == "numpy":
            arrays = self.graph_arrays()
            node_ids = arrays.node_ids
            distances = arrays.distances_from(range(len(node_ids)))
            result: Dict[NodeId, Dict[NodeId, int]] = {}
            for row, source in enumerate(node_ids):
                reachable = np.nonzero(np.isfinite(distances[row]))[0]
                result[source] = {
                    node_ids[column]: int(distances[row, column]) for column in reachable
                }
            return result
        return {source: lengths for source, lengths in nx.all_pairs_shortest_path_length(self.graph)}

    def hop_count_rows(self, sources: Sequence[NodeId]):
        """Batched hop counts: ``(node order, distances array)`` for ``sources``.

        One C-level BFS sweep for all sources (the placement cost probe's
        fast path); row ``i`` holds the hop counts from ``sources[i]`` to
        every node in the returned node order, ``inf`` where unreachable.
        """
        arrays = self.graph_arrays()
        return list(arrays.node_ids), arrays.distances_from(arrays.rows_of(sources))

    def shortest_path(
        self, source: NodeId, target: NodeId, backend: Optional[str] = None
    ) -> List[NodeId]:
        """One shortest (fewest-hops) path between two nodes."""
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().shortest_path(source, target)
        return nx.shortest_path(self.graph, source, target)

    def shortest_paths(
        self, source: NodeId, target: NodeId, k: int, backend: Optional[str] = None
    ) -> List[List[NodeId]]:
        """Up to ``k`` loop-free shortest paths (by hop count) between two nodes."""
        if k <= 0:
            return []
        if self.resolve_backend(backend) == "numpy":
            return self.graph_arrays().k_shortest_paths(source, target, k)
        generator = nx.shortest_simple_paths(self.graph, source, target)
        paths: List[List[NodeId]] = []
        for path in generator:
            paths.append(list(path))
            if len(paths) >= k:
                break
        return paths

    def path_capacity(self, path: Sequence[NodeId]) -> float:
        """Bottleneck spendable funds along a directed path.

        A path with a missing hop (e.g. a channel closed by network dynamics
        after the path was cached) has capacity 0.0 rather than raising, so
        routing layers holding stale paths simply skip them.
        """
        if len(path) < 2:
            return 0.0
        bottleneck = float("inf")
        for i in range(len(path) - 1):
            neighbors = self._adj.get(path[i])
            channel = neighbors.get(path[i + 1]) if neighbors is not None else None
            if channel is None:
                return 0.0
            bottleneck = min(bottleneck, channel.balance(path[i]))
        return bottleneck

    def subgraph_view(self) -> nx.Graph:
        """A read-only copy of the channel graph topology (no channel objects)."""
        return nx.Graph(self.graph.edges())

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]:
        """Capture every channel's balances so the topology can be replayed."""
        return {
            (channel.node_a, channel.node_b): channel.snapshot() for channel in self.channels()
        }

    def restore(self, snapshot: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]) -> None:
        """Restore channel balances captured by :meth:`snapshot`."""
        for (node_a, node_b), balances in snapshot.items():
            self.channel(node_a, node_b).restore(balances)

    def release_all_locks(self) -> int:
        """Release every outstanding lock in the network (aborting in-flight payments).

        Used by the experiment harness before restoring a snapshot so that a
        scheme that still had units in flight does not poison the next run.
        Returns the number of locks released.
        """
        released = 0
        for channel in self.channels():
            for lock in list(channel.locks()):
                channel.release(lock.lock_id)
                released += 1
        return released

    def reset_stats(self) -> None:
        """Clear every channel's lifetime statistics."""
        for channel in self.channels():
            channel.stats.__init__()

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        channel_size: float = 100.0,
        candidate_nodes: Optional[Iterable[NodeId]] = None,
        base_fee: float = 0.0,
        fee_rate: float = 0.0,
        backend: str = "numpy",
    ) -> "PCNetwork":
        """Build a PCN from a plain topology graph with uniform channel sizes.

        Args:
            graph: Topology; each edge becomes a channel.
            channel_size: Funds deposited *per direction* of every channel.
            candidate_nodes: Nodes to mark as hub candidates (others are clients).
            base_fee: Flat fee applied to every channel.
            fee_rate: Proportional fee applied to every channel.
            backend: Default path/distance helper backend of the network.
        """
        candidates = set(candidate_nodes or ())
        network = cls(backend=backend)
        for node in graph.nodes:
            role = ROLE_CANDIDATE if node in candidates else ROLE_CLIENT
            network.add_node(node, role=role)
        for node_a, node_b in graph.edges:
            network.add_channel(node_a, node_b, channel_size, channel_size, base_fee, fee_rate)
        return network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PCNetwork(nodes={self.node_count()}, channels={self.channel_count()}, "
            f"hubs={len(self.hubs())})"
        )
