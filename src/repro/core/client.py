"""Client entities.

Clients are the lightweight end-users of the PCN (possibly mobile or IoT
devices): they open a channel with exactly one smooth node, outsource all
routing computation to it, encrypt their payment demands to per-transaction
keys, and receive acknowledgments when payments complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from repro.core.payment import PaymentDemand, PaymentSession

NodeId = Hashable


@dataclass
class Client:
    """A PCN client attached to one smooth node.

    Attributes:
        node_id: The client's node id in the PCN topology.
        smooth_node_id: The smooth node serving this client.
        hops_to_hub: Communication hops between the client and its smooth node
            (drives the management-delay metric).
        sent_payments: Transaction ids of payments this client initiated.
        received_acks: Transaction ids acknowledged back to this client.
    """

    node_id: NodeId
    smooth_node_id: Optional[NodeId] = None
    hops_to_hub: int = 0
    sent_payments: List[str] = field(default_factory=list)
    received_acks: List[str] = field(default_factory=list)

    def attach(self, smooth_node_id: NodeId, hops_to_hub: int) -> None:
        """Attach the client to its (unique) serving smooth node."""
        self.smooth_node_id = smooth_node_id
        self.hops_to_hub = max(int(hops_to_hub), 0)

    def build_request(self, session: PaymentSession, recipient: NodeId, value: float) -> bytes:
        """Encrypt a payment demand for the smooth node (workflow step 1)."""
        if self.smooth_node_id is None:
            raise RuntimeError(f"client {self.node_id!r} is not attached to a smooth node")
        demand = PaymentDemand(sender=self.node_id, recipient=recipient, value=value)
        ciphertext = session.encrypt_demand(demand)
        self.sent_payments.append(session.tid)
        return ciphertext

    def receive_ack(self, tid: str) -> None:
        """Record the final acknowledgment forwarded by the smooth nodes."""
        self.received_acks.append(tid)

    @property
    def request_round_trip_hops(self) -> int:
        """Hops traversed by one request/acknowledgment round trip."""
        return 2 * self.hops_to_hub
