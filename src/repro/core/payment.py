"""The encrypted payment workflow of section III-A.

A :class:`PaymentSession` is the workflow wrapper around a routed payment:

1. the sender asks its smooth node for a fresh transaction id and public key
   (payment preparation),
2. the sender encrypts the demand ``D = (sender, recipient, value)`` and the
   smooth node decrypts it (payment execution step 1-2),
3. the routing layer splits the demand into transaction units, each
   encrypted to its own key from the KMG (step 2-3),
4. acknowledgments for every unit flip the per-unit completion flags; when
   all of them are true the transaction state is complete and the recipient's
   acknowledgment is forwarded back to the sender (step 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.core.kmg import KeyManagementGroup
from repro.crypto.keys import KeyPair, decrypt, encrypt
from repro.routing.transaction import Payment

NodeId = Hashable

_session_ids = itertools.count(1)


@dataclass(frozen=True)
class PaymentDemand:
    """The plaintext demand ``D_tid = (P_s, P_r, val_tid)``."""

    sender: NodeId
    recipient: NodeId
    value: float


@dataclass
class PaymentSession:
    """One transaction's workflow state as seen by the serving smooth node.

    Attributes:
        tid: Fresh transaction id.
        keypair: The per-transaction key pair obtained from the KMG.
        demand: The decrypted demand (set once the hub decrypts the request).
        unit_states: Per transaction-unit completion flags ``theta_tuid``.
        payment: The routed payment object once routing has started.
        ack_sent: Whether the final acknowledgment was forwarded to the sender.
    """

    tid: str
    keypair: KeyPair
    demand: Optional[PaymentDemand] = None
    unit_states: Dict[int, bool] = field(default_factory=dict)
    payment: Optional[Payment] = None
    ack_sent: bool = False

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def encrypt_demand(self, demand: PaymentDemand) -> bytes:
        """The sender encrypts its demand to the transaction's public key."""
        return encrypt(self.keypair.public_key, (demand.sender, demand.recipient, demand.value))

    # ------------------------------------------------------------------ #
    # smooth-node side
    # ------------------------------------------------------------------ #
    def decrypt_demand(self, ciphertext: bytes) -> PaymentDemand:
        """The smooth node decrypts the demand with the secret key it kept."""
        sender, recipient, value = decrypt(self.keypair.secret_key, ciphertext)
        self.demand = PaymentDemand(sender, recipient, float(value))
        return self.demand

    def attach_payment(self, payment: Payment) -> None:
        """Associate the routed payment and initialize the per-unit flags."""
        self.payment = payment
        self.unit_states = {unit.unit_id: False for unit in payment.units}

    def record_unit_ack(self, unit_id: int) -> None:
        """An ``ACK_tuid`` arrived for a transaction unit."""
        if unit_id not in self.unit_states:
            raise KeyError(f"unknown transaction unit {unit_id} for session {self.tid}")
        self.unit_states[unit_id] = True

    @property
    def theta(self) -> bool:
        """The transaction's completion flag (conjunction of the unit flags)."""
        if not self.unit_states:
            return False
        return all(self.unit_states.values())

    def finalize(self) -> bool:
        """Forward the final acknowledgment to the sender when complete.

        Returns True exactly once, the first time the session is complete.
        """
        if self.theta and not self.ack_sent:
            self.ack_sent = True
            return True
        return False


def open_session(kmg: KeyManagementGroup) -> PaymentSession:
    """Payment preparation: mint a fresh tid and fetch its key pair from the KMG."""
    tid = f"tid-{next(_session_ids)}"
    keypair = kmg.keypair_for(tid)
    return PaymentSession(tid=tid, keypair=keypair)
