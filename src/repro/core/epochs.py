"""Epoch-based bounded-synchronous communication (figure 5 of the paper).

Splicer runs in epochs: at the start of epoch ``e+1`` every PCH obtains and
synchronizes the final global state of epoch ``e`` (topology, channel state,
flow rates), then makes routing decisions for the requests its own clients
submitted in epoch ``e+1``.  :class:`EpochClock` tracks epoch boundaries and
:class:`SyncRecord` accounts for the messages and delay each synchronization
round costs -- the quantity the placement problem's synchronization cost
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

NodeId = Hashable


@dataclass
class SyncRecord:
    """Accounting for one epoch-boundary synchronization round."""

    epoch: int
    hub_pairs: int
    messages: int
    total_hops: int
    max_delay: float


@dataclass
class EpochClock:
    """Tracks epoch boundaries for a fixed epoch duration.

    Attributes:
        duration: Epoch length in seconds.
        current_epoch: Index of the epoch containing the latest observed time.
    """

    duration: float
    current_epoch: int = 0
    _records: List[SyncRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("epoch duration must be positive")

    def epoch_of(self, now: float) -> int:
        """The epoch index containing time ``now``."""
        return int(now // self.duration)

    def crossed_boundary(self, now: float) -> bool:
        """Whether ``now`` lies in a later epoch than the last observed one."""
        return self.epoch_of(now) > self.current_epoch

    def advance(self, now: float) -> int:
        """Advance to the epoch containing ``now``; returns epochs crossed."""
        new_epoch = self.epoch_of(now)
        crossed = max(new_epoch - self.current_epoch, 0)
        self.current_epoch = max(self.current_epoch, new_epoch)
        return crossed

    # ------------------------------------------------------------------ #
    # synchronization accounting
    # ------------------------------------------------------------------ #
    def record_sync(
        self,
        hub_hop_counts: Dict[Tuple[NodeId, NodeId], int],
        hop_delay: float,
    ) -> SyncRecord:
        """Record one synchronization round among the placed hubs.

        Args:
            hub_hop_counts: Communication hops for every ordered pair of hubs
                that exchanges state.
            hop_delay: One-way delay per hop.
        """
        messages = len(hub_hop_counts)
        total_hops = sum(hub_hop_counts.values())
        max_delay = max((hops * hop_delay for hops in hub_hop_counts.values()), default=0.0)
        record = SyncRecord(
            epoch=self.current_epoch,
            hub_pairs=messages,
            messages=messages,
            total_hops=total_hops,
            max_delay=max_delay,
        )
        self._records.append(record)
        return record

    @property
    def sync_records(self) -> List[SyncRecord]:
        """All synchronization rounds recorded so far."""
        return list(self._records)

    def total_sync_messages(self) -> int:
        """Total hub-to-hub messages across all recorded rounds."""
        return sum(record.messages for record in self._records)

    def total_sync_hops(self) -> int:
        """Total hop traversals consumed by synchronization traffic."""
        return sum(record.total_hops for record in self._records)
