"""Smooth node (PCH) entities.

A smooth node serves the payment requests of its directly-attached clients:
it mints transaction ids, obtains keys from the KMG, decrypts demands, hands
them to the routing engine, and forwards acknowledgments back to the
clients.  It also participates in the per-epoch global state synchronization
with the other smooth nodes, which is what the placement problem's
synchronization cost pays for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List

from repro.core.client import Client
from repro.core.kmg import KeyManagementGroup
from repro.core.payment import PaymentSession, open_session
from repro.routing.router import RateRouter, RoutingDecision
from repro.routing.transaction import Payment

NodeId = Hashable


@dataclass
class SmoothNodeStats:
    """Lifetime counters of a smooth node, used by the overhead metrics."""

    requests_received: int = 0
    payments_accepted: int = 0
    payments_rejected: int = 0
    acks_forwarded: int = 0
    management_messages: int = 0
    sync_rounds: int = 0


@dataclass
class SmoothNode:
    """A placed PCH running the distributed routing decision protocol.

    Attributes:
        node_id: The smooth node's id in the PCN topology.
        router: The (epoch-synchronized) routing engine.
        kmg: The key management group the node belongs to or queries.
        clients: Clients attached to this smooth node, keyed by node id.
        stats: Lifetime counters.
    """

    node_id: NodeId
    router: RateRouter
    kmg: KeyManagementGroup
    clients: Dict[NodeId, Client] = field(default_factory=dict)
    sessions: Dict[str, PaymentSession] = field(default_factory=dict)
    stats: SmoothNodeStats = field(default_factory=SmoothNodeStats)

    # ------------------------------------------------------------------ #
    # client management
    # ------------------------------------------------------------------ #
    def attach_client(self, client: Client, hops: int) -> None:
        """Attach a client to this smooth node."""
        client.attach(self.node_id, hops)
        self.clients[client.node_id] = client

    @property
    def client_count(self) -> int:
        """Number of clients served by this smooth node."""
        return len(self.clients)

    # ------------------------------------------------------------------ #
    # payment workflow
    # ------------------------------------------------------------------ #
    def open_payment(self, client_id: NodeId) -> PaymentSession:
        """Payment preparation: mint a tid/key pair for an attached client."""
        if client_id not in self.clients:
            raise KeyError(f"client {client_id!r} is not attached to smooth node {self.node_id!r}")
        session = open_session(self.kmg)
        self.sessions[session.tid] = session
        self.stats.management_messages += 2  # request + (tid, pk) reply
        return session

    def execute_payment(
        self,
        session: PaymentSession,
        ciphertext: bytes,
        now: float,
        timeout: float,
    ) -> RoutingDecision:
        """Payment execution: decrypt the demand, split it and start routing."""
        self.stats.requests_received += 1
        self.stats.management_messages += 1
        demand = session.decrypt_demand(ciphertext)
        payment = Payment.create(
            sender=demand.sender,
            recipient=demand.recipient,
            value=demand.value,
            created_at=now,
            timeout=timeout,
        )
        decision = self.router.submit(payment, now)
        if decision.accepted:
            session.attach_payment(payment)
            self.stats.payments_accepted += 1
        else:
            self.stats.payments_rejected += 1
        return decision

    def process_acknowledgments(self) -> List[str]:
        """Flip per-unit flags from delivered units and forward final ACKs.

        Returns the transaction ids completed during this call.
        """
        completed: List[str] = []
        for tid, session in self.sessions.items():
            payment = session.payment
            if payment is None or session.ack_sent:
                continue
            for unit in payment.units:
                if unit.delivered and not session.unit_states.get(unit.unit_id, False):
                    session.record_unit_ack(unit.unit_id)
            if session.finalize():
                completed.append(tid)
                self.stats.acks_forwarded += 1
                client = self.clients.get(payment.sender)
                if client is not None:
                    client.receive_ack(tid)
        return completed

    def record_sync_round(self) -> None:
        """Count one epoch-boundary synchronization with the other smooth nodes."""
        self.stats.sync_rounds += 1
