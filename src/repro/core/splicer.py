"""The Splicer system facade.

:class:`SplicerSystem` wires every piece of the paper together over a
payment channel network:

1. *Candidate election* -- when the network does not already designate
   candidate smooth nodes, the multiwinner voting contract elects them.
2. *Placement* -- the placement-optimization contract solves for the actual
   PCHs (MILP for small candidate sets, double-greedy otherwise) and every
   client is attached to its Lemma-1 optimal hub.
3. *Routing* -- the smooth nodes run the rate-based deadlock-free routing
   protocol over the shared (epoch-synchronized) network state.
4. *Workflow* -- payments follow the encrypted prepare/execute/acknowledge
   workflow of section III-A, with keys issued by the key management group.

The facade exposes a small API (``setup``, ``submit_payment``, ``step``)
that the examples, tests, benchmarks and the simulator scheme wrapper all
share.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.client import Client
from repro.core.config import SplicerConfig
from repro.core.epochs import EpochClock
from repro.core.kmg import KeyManagementGroup
from repro.core.payment import PaymentSession
from repro.core.smooth_node import SmoothNode
from repro.crypto.contracts import PlacementContract, VotingContract
from repro.placement.problem import PlacementPlan
from repro.routing.router import RateRouter, RoutingDecision, StepReport
from repro.topology.generators import assign_roles_from_placement
from repro.topology.network import PCNetwork

NodeId = Hashable


class SplicerSystem:
    """A deployed Splicer instance over a payment channel network."""

    def __init__(self, network: PCNetwork, config: Optional[SplicerConfig] = None) -> None:
        self.network = network
        self.config = config or SplicerConfig()
        self.voting_contract = VotingContract()
        self.placement_contract = PlacementContract(
            omega=self.config.omega,
            method=self.config.placement_method,
            backend=self.config.placement_backend,
        )
        self.router = RateRouter(network, self.config.router)
        self.epoch_clock = EpochClock(duration=self.config.epoch_duration)
        self.placement_plan: Optional[PlacementPlan] = None
        self.smooth_nodes: Dict[NodeId, SmoothNode] = {}
        self.clients: Dict[NodeId, Client] = {}
        self.kmg: Optional[KeyManagementGroup] = None
        self._hub_pair_hops: Dict[Tuple[NodeId, NodeId], int] = {}
        self._is_setup = False

    # ------------------------------------------------------------------ #
    # setup: election, placement, wiring
    # ------------------------------------------------------------------ #
    def setup(self) -> PlacementPlan:
        """Elect candidates, solve placement and attach clients to hubs.

        Idempotent: calling it twice returns the already-computed plan.
        """
        if self._is_setup and self.placement_plan is not None:
            return self.placement_plan

        candidates = self.network.candidates()
        if self.config.candidate_count is not None or not candidates:
            winners = self.config.candidate_count or max(2, self.network.node_count() // 10)
            population = self.network.node_count()
            candidates = self.voting_contract.elect_candidates(
                self.network,
                winners=winners,
                votes_for=population,
                votes_total=population,
            )

        plan = self.placement_contract.decide_placement(
            self.network, candidates=candidates, seed=self.config.placement_seed
        )
        self.placement_plan = plan
        assign_roles_from_placement(self.network, plan.hubs)

        self.kmg = KeyManagementGroup(
            members=sorted(plan.hubs, key=repr)[: max(self.config.kmg_size, 1)]
        )
        self.smooth_nodes = {
            hub: SmoothNode(node_id=hub, router=self.router, kmg=self.kmg) for hub in plan.hubs
        }

        self.clients = {}
        for client_id, hub_id in plan.assignment.items():
            client = Client(node_id=client_id)
            hops = self._safe_hops(client_id, hub_id)
            self.smooth_nodes[hub_id].attach_client(client, hops)
            self.clients[client_id] = client

        self._hub_pair_hops = {
            (a, b): self._safe_hops(a, b)
            for a in plan.hubs
            for b in plan.hubs
            if a != b
        }
        self._is_setup = True
        return plan

    def _safe_hops(self, source: NodeId, target: NodeId) -> int:
        try:
            return self.network.hop_count(source, target)
        except Exception:
            return self.network.node_count()

    # ------------------------------------------------------------------ #
    # payment workflow
    # ------------------------------------------------------------------ #
    def hub_of(self, client_id: NodeId) -> NodeId:
        """The smooth node serving a client."""
        self._require_setup()
        client = self.clients.get(client_id)
        if client is None or client.smooth_node_id is None:
            raise KeyError(f"{client_id!r} is not a client of this Splicer instance")
        return client.smooth_node_id

    def submit_payment(
        self,
        sender: NodeId,
        recipient: NodeId,
        value: float,
        now: float = 0.0,
    ) -> Tuple[PaymentSession, RoutingDecision]:
        """Run the full encrypted workflow for one payment demand.

        Returns the workflow session and the routing decision.  The payment's
        deadline is ``now + payment_timeout``.
        """
        self._require_setup()
        hub_id = self.hub_of(sender)
        smooth_node = self.smooth_nodes[hub_id]
        client = self.clients[sender]
        session = smooth_node.open_payment(sender)
        ciphertext = client.build_request(session, recipient, value)
        decision = smooth_node.execute_payment(
            session, ciphertext, now=now, timeout=self.config.payment_timeout
        )
        return session, decision

    def step(self, now: float, dt: float) -> StepReport:
        """Advance the system: route, acknowledge, and synchronize at epoch edges."""
        self._require_setup()
        report = self.router.step(now, dt)
        for smooth_node in self.smooth_nodes.values():
            smooth_node.process_acknowledgments()
        if self.epoch_clock.crossed_boundary(now):
            self.epoch_clock.advance(now)
            self.epoch_clock.record_sync(self._hub_pair_hops, self.config.hub_sync_hop_delay)
            for smooth_node in self.smooth_nodes.values():
                smooth_node.record_sync_round()
        return report

    def run(self, duration: float, dt: Optional[float] = None) -> List[StepReport]:
        """Convenience loop: step from 0 to ``duration`` and return every report."""
        self._require_setup()
        step_size = dt if dt is not None else self.config.router.update_interval
        reports = []
        steps = int(duration / step_size)
        for index in range(1, steps + 1):
            reports.append(self.step(index * step_size, step_size))
        return reports

    # ------------------------------------------------------------------ #
    # metrics helpers
    # ------------------------------------------------------------------ #
    def management_delay(self, client_id: NodeId) -> float:
        """Round-trip client-to-hub communication delay for one payment."""
        self._require_setup()
        client = self.clients[client_id]
        return client.request_round_trip_hops * self.config.client_hub_hop_delay

    def management_hops(self, client_id: NodeId) -> int:
        """Round-trip client-to-hub hops for one payment (overhead metric)."""
        self._require_setup()
        return self.clients[client_id].request_round_trip_hops

    def sync_message_hops_per_epoch(self) -> int:
        """Hop traversals consumed by one hub-to-hub synchronization round."""
        self._require_setup()
        return sum(self._hub_pair_hops.values())

    @property
    def hubs(self) -> List[NodeId]:
        """The placed smooth nodes."""
        self._require_setup()
        return sorted(self.placement_plan.hubs, key=repr)

    def _require_setup(self) -> None:
        if not self._is_setup:
            raise RuntimeError("call setup() before using the Splicer system")
