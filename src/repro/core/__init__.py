"""The Splicer system: multi-PCH payment routing with optimized placement.

This subpackage ties the substrates together into the system of the paper:

* :class:`~repro.core.config.SplicerConfig` collects every tunable parameter
  with the paper's defaults,
* :class:`~repro.core.kmg.KeyManagementGroup` issues per-transaction keys,
* :class:`~repro.core.client.Client` and
  :class:`~repro.core.smooth_node.SmoothNode` are the two entity types,
* :class:`~repro.core.payment.PaymentSession` is the encrypted payment
  workflow of section III-A,
* :class:`~repro.core.epochs.EpochClock` models the bounded-synchronous
  epoch communication,
* :class:`~repro.core.splicer.SplicerSystem` is the public facade: give it a
  network, it elects candidates, solves placement, wires clients to smooth
  nodes and routes payments deadlock-free.
"""

from repro.core.client import Client
from repro.core.config import SplicerConfig
from repro.core.epochs import EpochClock
from repro.core.kmg import KeyManagementGroup
from repro.core.payment import PaymentSession
from repro.core.smooth_node import SmoothNode
from repro.core.splicer import SplicerSystem

__all__ = [
    "SplicerConfig",
    "KeyManagementGroup",
    "Client",
    "SmoothNode",
    "PaymentSession",
    "EpochClock",
    "SplicerSystem",
]
