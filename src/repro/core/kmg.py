"""Key management group (KMG).

A subset of ``iota`` smooth nodes jointly generates per-transaction key
pairs (in the deployed system via a distributed key generation protocol).
The reproduction models the group's interface: any member can request a
fresh key pair for a transaction or transaction-unit id, the same id always
maps to the same pair, and key retrieval requires a quorum of live members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.crypto.keys import KeyPair, generate_keypair

NodeId = Hashable


class KMGUnavailableError(Exception):
    """Raised when too few KMG members are live to serve key requests."""


@dataclass
class KeyManagementGroup:
    """The smooth nodes' distributed key service.

    Attributes:
        members: Smooth nodes forming the group (``iota`` of them).
        quorum: Minimum number of live members needed to generate or retrieve
            keys; defaults to a simple majority.
    """

    members: List[NodeId]
    quorum: Optional[int] = None
    _keys: Dict[str, KeyPair] = field(default_factory=dict)
    _offline: Set[NodeId] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("the KMG needs at least one member")
        if self.quorum is None:
            self.quorum = len(self.members) // 2 + 1
        if not 1 <= self.quorum <= len(self.members):
            raise ValueError("quorum must be between 1 and the member count")

    # ------------------------------------------------------------------ #
    # membership / liveness
    # ------------------------------------------------------------------ #
    @property
    def live_members(self) -> List[NodeId]:
        """Members currently online."""
        return [member for member in self.members if member not in self._offline]

    def set_offline(self, member: NodeId, offline: bool = True) -> None:
        """Mark a member as offline (or back online), e.g. for failure injection."""
        if member not in self.members:
            raise KeyError(f"{member!r} is not a KMG member")
        if offline:
            self._offline.add(member)
        else:
            self._offline.discard(member)

    def has_quorum(self) -> bool:
        """Whether enough members are live to serve requests."""
        return len(self.live_members) >= self.quorum

    # ------------------------------------------------------------------ #
    # key service
    # ------------------------------------------------------------------ #
    def keypair_for(self, transaction_id: str) -> KeyPair:
        """The key pair for a transaction (or TU) id, generating it on first use."""
        if not self.has_quorum():
            raise KMGUnavailableError(
                f"only {len(self.live_members)}/{len(self.members)} KMG members are live "
                f"(quorum {self.quorum})"
            )
        if transaction_id not in self._keys:
            self._keys[transaction_id] = generate_keypair()
        return self._keys[transaction_id]

    def public_key_for(self, transaction_id: str) -> bytes:
        """Only the public half, as handed to the paying client."""
        return self.keypair_for(transaction_id).public_key

    def issued_count(self) -> int:
        """Number of distinct key pairs issued so far."""
        return len(self._keys)
