"""Configuration for the Splicer system.

All defaults follow section V-A of the paper: 3-second transaction timeout,
Min-TU of 1 token, Max-TU of 4 tokens, 5 routing paths, 200 ms update time,
8000-token queues, window factors beta=10 and gamma=0.1, a 400 ms queueing
delay threshold, and the hop-based placement cost coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.routing.router import RouterConfig


@dataclass
class SplicerConfig:
    """Every tunable parameter of a Splicer deployment.

    Attributes:
        router: Routing-protocol parameters (paths, rates, prices, congestion).
        omega: Placement weight between management and synchronization costs.
        placement_method: Placement algorithm (``auto``/``milp``/``exact``/``greedy``/``brute``).
        placement_seed: Seed for the randomized placement approximation.
        placement_backend: Execution backend of the placement optimization
            (``"python"`` scalar reference / vectorized ``"numpy"``; both
            produce identical plans).
        candidate_count: Number of smooth-node candidates elected by the
            voting contract when the network does not already designate them
            (``None`` keeps the network's candidate set).
        kmg_size: Number of smooth nodes forming the key management group (iota).
        epoch_duration: Length of one communication epoch in seconds.
        payment_timeout: Transaction deadline in seconds (paper: 3 s).
        client_hub_hop_delay: One-way communication delay per hop between a
            client and its smooth node, used for the management-delay metric.
        hub_sync_hop_delay: One-way delay per hop between smooth nodes, used
            for the synchronization-delay metric.
    """

    router: RouterConfig = field(default_factory=RouterConfig)
    omega: float = 0.05
    placement_method: str = "auto"
    placement_seed: Optional[int] = 0
    placement_backend: str = "numpy"
    candidate_count: Optional[int] = None
    kmg_size: int = 3
    epoch_duration: float = 1.0
    payment_timeout: float = 3.0
    client_hub_hop_delay: float = 0.01
    hub_sync_hop_delay: float = 0.01

    def __post_init__(self) -> None:
        if self.omega < 0:
            raise ValueError("omega must be non-negative")
        if self.kmg_size < 1:
            raise ValueError("the key management group needs at least one member")
        if self.epoch_duration <= 0:
            raise ValueError("epoch_duration must be positive")
        if self.payment_timeout <= 0:
            raise ValueError("payment_timeout must be positive")

    def with_router(self, **changes: object) -> "SplicerConfig":
        """A copy of the configuration with some router fields replaced."""
        return replace(self, router=replace(self.router, **changes))

    @classmethod
    def paper_defaults(cls) -> "SplicerConfig":
        """The configuration used by the paper's evaluation."""
        return cls()
