"""Experiment runner: one topology, one workload, several routing schemes.

:class:`ExperimentRunner` replays the same transaction workload over the
same funded topology under each scheme: channel balances are snapshotted
before the first run and restored between runs, arrivals are delivered
through the discrete-event engine, and every scheme is stepped at a fixed
interval.  The result is one :class:`~repro.simulator.metrics.SchemeMetrics`
per scheme, which is exactly the material of the paper's figures 7, 8 and 9
and Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import RoutingScheme, SchemeStepReport
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import EventKind
from repro.simulator.metrics import MetricsCollector, SchemeMetrics
from repro.simulator.workload import TransactionWorkload
from repro.topology.network import PCNetwork


@dataclass
class ExperimentResult:
    """Outcome of one experiment: per-scheme metrics plus workload context."""

    metrics: Dict[str, SchemeMetrics]
    workload_count: int
    workload_value: float
    parameters: Dict[str, object] = field(default_factory=dict)

    def scheme(self, name: str) -> SchemeMetrics:
        """Metrics of one scheme by name."""
        return self.metrics[name]

    def schemes(self) -> List[str]:
        """Scheme names in insertion order."""
        return list(self.metrics)

    def ranking(self, metric: str = "success_ratio") -> List[str]:
        """Scheme names sorted best-first by the given metric attribute."""
        return sorted(
            self.metrics,
            key=lambda name: getattr(self.metrics[name], metric),
            reverse=True,
        )

    def improvement(self, scheme: str, baseline: str, metric: str = "success_ratio") -> float:
        """Relative improvement of ``scheme`` over ``baseline`` on a metric.

        Returns ``(scheme - baseline) / baseline``; +inf when the baseline is 0
        and the scheme is positive, 0.0 when both are 0.
        """
        ours = getattr(self.metrics[scheme], metric)
        theirs = getattr(self.metrics[baseline], metric)
        if theirs == 0:
            return float("inf") if ours > 0 else 0.0
        return (ours - theirs) / theirs

    def as_rows(self) -> List[Dict[str, object]]:
        """Row-per-scheme dictionaries for table rendering."""
        return [metrics.as_dict() for metrics in self.metrics.values()]


class ExperimentRunner:
    """Replays one workload over one network under several schemes."""

    def __init__(
        self,
        network: PCNetwork,
        workload: TransactionWorkload,
        step_size: float = 0.1,
        drain_time: float = 5.0,
    ) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if drain_time < 0:
            raise ValueError("drain_time must be non-negative")
        self.network = network
        self.workload = workload
        self.step_size = step_size
        self.drain_time = drain_time
        self._snapshot = network.snapshot()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        schemes: Sequence[RoutingScheme],
        rng: Optional[np.random.Generator] = None,
        parameters: Optional[Dict[str, object]] = None,
    ) -> ExperimentResult:
        """Run every scheme on the workload and collect its metrics."""
        metrics: Dict[str, SchemeMetrics] = {}
        for scheme in schemes:
            metrics[scheme.name] = self.run_single(scheme, rng=rng)
        return ExperimentResult(
            metrics=metrics,
            workload_count=self.workload.count,
            workload_value=self.workload.total_value,
            parameters=dict(parameters or {}),
        )

    def run_single(
        self,
        scheme: RoutingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> SchemeMetrics:
        """Run one scheme on the workload from a pristine copy of the topology."""
        self._reset_network()
        scheme.prepare(self.network, rng=rng)
        collector = MetricsCollector(scheme.name)

        engine = SimulationEngine()
        end_time = self.workload.config.duration + self.drain_time

        def on_arrival(_engine: SimulationEngine, event) -> None:
            request = event.payload
            collector.record_generated(request.value)
            scheme.submit(request, _engine.now)

        def on_tick(_engine: SimulationEngine, _event) -> None:
            report = scheme.step(_engine.now, self.step_size)
            self._consume(report, scheme, collector)

        for request in self.workload.requests:
            engine.schedule_at(
                request.arrival_time,
                kind=EventKind.PAYMENT_ARRIVAL,
                payload=request,
                handler=on_arrival,
            )
        engine.schedule_periodic(
            start=self.step_size,
            interval=self.step_size,
            end=end_time,
            kind=EventKind.SCHEME_TICK,
            handler=on_tick,
        )
        engine.run(until=end_time)

        final_report = scheme.finish(end_time)
        self._consume(final_report, scheme, collector)
        collector.add_overhead(scheme.overhead_messages())
        return collector.finalize()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _reset_network(self) -> None:
        self.network.release_all_locks()
        self.network.restore(self._snapshot)
        self.network.reset_stats()

    def _consume(
        self,
        report: SchemeStepReport,
        scheme: RoutingScheme,
        collector: MetricsCollector,
    ) -> None:
        for payment in report.completed:
            collector.record_completed(payment, extra_delay=scheme.extra_delay(payment))
        for payment in report.failed:
            collector.record_failed(payment)
        collector.add_fees(report.fees_paid)


def compare_schemes(
    network: PCNetwork,
    workload: TransactionWorkload,
    schemes: Sequence[RoutingScheme],
    step_size: float = 0.1,
    drain_time: float = 5.0,
    parameters: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """One-call convenience wrapper used by the examples and benchmarks."""
    runner = ExperimentRunner(network, workload, step_size=step_size, drain_time=drain_time)
    return runner.run(schemes, parameters=parameters)
