"""Experiment runner: one topology, one workload, several routing schemes.

:class:`ExperimentRunner` replays the same transaction workload over the
same funded topology under each scheme: channel balances are snapshotted
before the first run and restored between runs, arrivals are delivered
through the discrete-event engine, and every scheme is stepped at a fixed
interval.  By default consecutive arrivals are coalesced and drained in
epoch-sized batches through :meth:`RoutingScheme.route_batch` -- nothing
happens between coalesced arrivals and each request keeps its own arrival
timestamp, so results are identical to per-arrival delivery while vectorized
scheme backends amortize their work.  The result is one
:class:`~repro.simulator.metrics.SchemeMetrics` per scheme, which is exactly
the material of the paper's figures 7, 8 and 9 and Table II.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Sequence

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep simulator importable before baselines
    from repro.baselines.base import RoutingScheme, SchemeStepReport

from repro.obs import core as obs
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import Event, EventKind
from repro.simulator.metrics import MetricsCollector, SchemeMetrics
from repro.simulator.workload import StreamingWorkload, TransactionWorkload
from repro.topology.network import PCNetwork


#: Execution engines of the runner: ``"events"`` schedules every arrival as
#: its own engine event (the reference), ``"epoch"`` drains arrivals from a
#: sorted array cursor per tick without touching the python heap per payment.
VALID_ENGINES = ("events", "epoch")


class _EpochArrivalCursor:
    """Array-backed drain cursor over a materialized workload (epoch engine).

    Holds the stable arrival-time-sorted request list plus a float64 view of
    the times; each drain is one ``np.searchsorted`` and a list slice.  The
    order and the strict ``arrival_time <= now`` boundary reproduce exactly
    what the event engine's ``(time, sequence)`` heap delivers, so the two
    execution paths are decision-identical (pinned by
    ``tests/simulator/test_epoch_stepper_equivalence.py``).
    """

    def __init__(self, times: np.ndarray, requests: List) -> None:
        self._times = times
        self._requests = requests
        self._index = 0

    def take_until(self, now: float) -> List:
        """All not-yet-taken requests with ``arrival_time <= now``, in order."""
        hi = int(np.searchsorted(self._times, now, side="right"))
        lo = self._index
        if hi <= lo:
            return []
        self._index = hi
        return self._requests[lo:hi]


class _ArrivalCursor:
    """Pulls time-ordered requests out of a streaming workload on demand.

    Streaming replay must be *decision-identical* to scheduling every
    request as an engine event: with batched arrivals, a request arriving
    at or before a drain point (tick, dynamics event, final drain) is part
    of that drain's batch.  The cursor reproduces exactly that with a
    strict ``arrival_time <= now`` test, holding only one chunk of the
    stream in memory at a time.
    """

    def __init__(self, workload: StreamingWorkload) -> None:
        self._chunks = iter(workload.iter_chunks())
        self._buffer: List = []
        self._index = 0

    def take_until(self, now: float) -> List:
        """All not-yet-taken requests with ``arrival_time <= now``, in order."""
        taken: List = []
        while True:
            while self._index < len(self._buffer):
                request = self._buffer[self._index]
                if request.arrival_time > now:
                    return taken
                taken.append(request)
                self._index += 1
            chunk = next(self._chunks, None)
            if chunk is None:
                return taken
            self._buffer = chunk
            self._index = 0


class NetworkDynamicsEvent(Protocol):
    """A mid-run network mutation the runner injects through the engine.

    Implemented by :mod:`repro.scenarios.dynamics`; the runner only relies on
    this structural interface so the simulator stays independent of the
    scenario layer.  ``apply`` mutates the network and returns an undo
    callable (or ``None`` when the event was a no-op, e.g. closing a channel
    that is already gone).  Events with a ``duration`` are automatically
    undone that many seconds after they fire; every mutation still
    outstanding at the end of a run is undone before the next scheme runs,
    so snapshot/restore replay keeps working.
    """

    time: float
    duration: Optional[float]

    def apply(self, network: PCNetwork) -> Optional[Callable[[], None]]: ...


@dataclass
class ExperimentResult:
    """Outcome of one experiment: per-scheme metrics plus workload context."""

    metrics: Dict[str, SchemeMetrics]
    workload_count: int
    workload_value: float
    parameters: Dict[str, object] = field(default_factory=dict)

    def scheme(self, name: str) -> SchemeMetrics:
        """Metrics of one scheme by name."""
        return self.metrics[name]

    def schemes(self) -> List[str]:
        """Scheme names in insertion order."""
        return list(self.metrics)

    def ranking(self, metric: str = "success_ratio") -> List[str]:
        """Scheme names sorted best-first by the given metric attribute."""
        return sorted(
            self.metrics,
            key=lambda name: getattr(self.metrics[name], metric),
            reverse=True,
        )

    def improvement(self, scheme: str, baseline: str, metric: str = "success_ratio") -> float:
        """Relative improvement of ``scheme`` over ``baseline`` on a metric.

        Returns ``(scheme - baseline) / baseline``; +inf when the baseline is 0
        and the scheme is positive, 0.0 when both are 0.
        """
        ours = getattr(self.metrics[scheme], metric)
        theirs = getattr(self.metrics[baseline], metric)
        if theirs == 0:
            return float("inf") if ours > 0 else 0.0
        return (ours - theirs) / theirs

    def as_rows(self) -> List[Dict[str, object]]:
        """Row-per-scheme dictionaries for table rendering."""
        return [metrics.as_dict() for metrics in self.metrics.values()]


class ExperimentRunner:
    """Replays one workload over one network under several schemes.

    This is the measurement loop behind the paper's evaluation (section VI):
    each scheme sees the identical funded topology and arrival stream, and
    its :class:`~repro.simulator.metrics.SchemeMetrics` row is one bar of
    figures 7/8 or one cell of Table II.  Mid-run network dynamics are
    applied through the engine with the scheme's fast-path state flushed
    before and invalidated after every mutation (``flush_state`` /
    ``on_network_change``), so array-mirror backends observe exactly what
    the scalar reference would.
    """

    def __init__(
        self,
        network: PCNetwork,
        workload: "TransactionWorkload | StreamingWorkload",
        step_size: float = 0.1,
        drain_time: float = 5.0,
        dynamics: Optional[Sequence[NetworkDynamicsEvent]] = None,
        batch_arrivals: bool = True,
        engine: str = "events",
    ) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if drain_time < 0:
            raise ValueError("drain_time must be non-negative")
        if engine not in VALID_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {VALID_ENGINES}")
        if hasattr(workload, "iter_chunks") and not batch_arrivals:
            raise ValueError(
                "streaming workloads require batch_arrivals=True; "
                "materialize() the workload for per-arrival delivery"
            )
        if engine == "epoch" and not batch_arrivals:
            raise ValueError("the epoch engine requires batch_arrivals=True")
        self.network = network
        self.workload = workload
        self.step_size = step_size
        self.drain_time = drain_time
        self.batch_arrivals = batch_arrivals
        self.engine = engine
        self._epoch_arrivals: Optional[tuple] = None
        self.dynamics: List[NetworkDynamicsEvent] = list(dynamics or [])
        self._snapshot = network.snapshot()
        self._channel_fees = {
            frozenset(channel.endpoints): (channel.base_fee, channel.fee_rate)
            for channel in network.channels()
        }

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        schemes: Sequence[RoutingScheme],
        rng: Optional[np.random.Generator] = None,
        parameters: Optional[Dict[str, object]] = None,
        dynamics: Optional[Sequence[NetworkDynamicsEvent]] = None,
    ) -> ExperimentResult:
        """Run every scheme on the workload and collect its metrics."""
        metrics: Dict[str, SchemeMetrics] = {}
        for scheme in schemes:
            metrics[scheme.name] = self.run_single(scheme, rng=rng, dynamics=dynamics)
        return ExperimentResult(
            metrics=metrics,
            workload_count=self.workload.count,
            workload_value=self.workload.total_value,
            parameters=dict(parameters or {}),
        )

    def run_single(
        self,
        scheme: RoutingScheme,
        rng: Optional[np.random.Generator] = None,
        dynamics: Optional[Sequence[NetworkDynamicsEvent]] = None,
    ) -> SchemeMetrics:
        """Run one scheme on the workload from a pristine copy of the topology.

        ``dynamics`` (defaulting to the runner-level list) are injected as
        engine events: each fires at its ``time``, mutates the live network,
        and is undone after its ``duration`` -- or at the end of the run, so
        the next scheme replays the identical (static) starting topology.

        With ``batch_arrivals`` (the default) consecutive arrival events are
        coalesced and drained through :meth:`RoutingScheme.route_batch` at
        the next tick or dynamics event.  Nothing happens between coalesced
        arrivals, and each request is routed at its own arrival time, so the
        decision sequence is identical to per-arrival delivery; schemes with
        a vectorized backend amortize their work across the batch.

        :class:`~repro.simulator.workload.StreamingWorkload` inputs (trace
        replays) are pulled chunk by chunk at the same drain points instead
        of being pre-scheduled, with identical batch boundaries -- the full
        trace is never materialized as Python objects.
        """
        self._reset_network()
        scheme.prepare(self.network, rng=rng)
        collector = MetricsCollector(scheme.name)

        engine = SimulationEngine()
        end_time = self.workload.config.duration + self.drain_time
        pending: List = []
        # Streaming workloads are pulled through a cursor at every drain
        # point instead of being pre-scheduled as engine events; the strict
        # arrival_time <= now test makes the two delivery paths
        # decision-identical (engine.run leaves now == end_time, so the
        # final drain sees the stream's tail as well).  The epoch engine
        # extends the same cursor contract to materialized workloads: no
        # per-payment heap events at all, one searchsorted slice per drain.
        if hasattr(self.workload, "iter_chunks"):
            cursor = _ArrivalCursor(self.workload)
        elif self.engine == "epoch":
            cursor = self._epoch_cursor()
        else:
            cursor = None

        rec = obs.RECORDER
        if rec.enabled:
            rec.set_scheme(scheme.name)
            rec.trace_event(
                "run.start", 0.0,
                end_time=round(end_time, 9), requests=self.workload.count,
            )

        def drain_arrivals() -> None:
            if cursor is not None:
                pending.extend(cursor.take_until(engine.now))
            if not pending:
                return
            batch = list(pending)
            pending.clear()
            collector.record_generated_batch([request.value for request in batch])
            if rec.enabled:
                rec.note_batch(scheme.name, len(batch))
            scheme.route_batch(batch)

        if self.batch_arrivals:

            def on_arrival(_engine: SimulationEngine, event) -> None:
                pending.append(event.payload)

        else:

            def on_arrival(_engine: SimulationEngine, event) -> None:
                request = event.payload
                collector.record_generated(request.value)
                scheme.submit(request, _engine.now)

        def on_tick(_engine: SimulationEngine, _event) -> None:
            drain_arrivals()
            report = scheme.step(_engine.now, self.step_size)
            self._consume(report, scheme, collector, _engine.now)

        if cursor is None:
            engine.schedule_many(
                Event(
                    time=request.arrival_time,
                    kind=EventKind.PAYMENT_ARRIVAL,
                    payload=request,
                    handler=on_arrival,
                )
                for request in self.workload.requests
            )
        engine.schedule_periodic(
            start=self.step_size,
            interval=self.step_size,
            end=end_time,
            kind=EventKind.SCHEME_TICK,
            handler=on_tick,
        )
        events = self.dynamics if dynamics is None else list(dynamics)
        outstanding = self._schedule_dynamics(engine, events, scheme, drain_arrivals)
        health = rec.health if rec.enabled else None
        if health is not None:
            # Scheduled after the tick series so that a probe landing on a
            # tick's timestamp observes the post-step network.  The probe is
            # strictly read-only: flushing makes the channel objects
            # authoritative without changing any scheme decision, so results
            # stay bit-identical with telemetry on or off.
            def on_probe(_engine: SimulationEngine, _event) -> None:
                scheme.flush_state()
                health.observe(
                    scheme.name, self.network, _engine.now,
                    cache_stats=scheme.path_store_stats(),
                )

            engine.schedule_periodic(
                start=health.interval,
                interval=health.interval,
                end=end_time,
                kind=EventKind.CUSTOM,
                handler=on_probe,
            )
        try:
            engine.run(until=end_time)
            drain_arrivals()
            final_report = scheme.finish(end_time)
            self._consume(final_report, scheme, collector, end_time)
        finally:
            # Make the channel objects authoritative again before touching
            # them, then undo mutations still in effect (newest first) so the
            # snapshot can be restored for the next scheme.
            scheme.flush_state()
            for key in sorted(outstanding, reverse=True):
                outstanding.pop(key)()
            scheme.on_network_change()
        collector.add_overhead(scheme.overhead_messages())
        if rec.enabled:
            rec.trace_event(
                "run.end", end_time,
                completed=collector.completed_count, failed=collector.failed_count,
                generated=collector.generated_count,
            )
            rec.set_scheme(None)
        return collector.finalize()

    def _epoch_cursor(self) -> _EpochArrivalCursor:
        """A fresh drain cursor over the workload's stable-sorted arrivals.

        The sorted request list and its float64 time view are computed once
        per runner and shared across schemes (the cursor only advances an
        index), so multi-scheme comparisons pay the sort a single time.
        """
        cached = self._epoch_arrivals
        if cached is None or cached[0] is not self.workload.requests:
            times, ordered = self.workload._sorted_arrivals()
            cached = (self.workload.requests, np.asarray(times, dtype=float), ordered)
            self._epoch_arrivals = cached
        return _EpochArrivalCursor(cached[1], cached[2])

    def _schedule_dynamics(
        self,
        engine: SimulationEngine,
        events: Sequence[NetworkDynamicsEvent],
        scheme: RoutingScheme,
        drain_arrivals: Callable[[], None],
    ) -> Dict[int, Callable[[], None]]:
        """Schedule dynamics events plus their timed reverts on the engine.

        Every mutation is bracketed by the scheme's fast-path hooks: buffered
        arrivals are drained and array state is flushed *before* the network
        changes (the mutation may read or rewrite channel balances), and the
        scheme is told to invalidate its mirrors *after*.

        Returns the registry of outstanding undo callables; entries are
        removed as timed reverts fire, and whatever remains at the end of the
        run must be executed by the caller.
        """
        outstanding: Dict[int, Callable[[], None]] = {}
        keys = itertools.count()

        def on_dynamics(_engine: SimulationEngine, event) -> None:
            dynamics_event = event.payload
            drain_arrivals()
            scheme.flush_state()
            undo = dynamics_event.apply(self.network)
            scheme.on_network_change()
            rec = obs.RECORDER
            if rec.enabled:
                rec.trace_event(
                    "dynamics.apply", _engine.now,
                    event=type(dynamics_event).__name__,
                    applied=undo is not None,
                    duration=dynamics_event.duration,
                )
            if undo is None:
                return
            key = next(keys)
            outstanding[key] = undo

            if dynamics_event.duration is None:
                return

            def on_revert(_e: SimulationEngine, _ev, _key: int = key) -> None:
                revert = outstanding.pop(_key, None)
                if revert is not None:
                    drain_arrivals()
                    scheme.flush_state()
                    revert()
                    scheme.on_network_change()
                    inner = obs.RECORDER
                    if inner.enabled:
                        inner.trace_event(
                            "dynamics.revert", _e.now,
                            event=type(dynamics_event).__name__,
                        )

            _engine.schedule_at(
                _engine.now + dynamics_event.duration,
                kind=EventKind.TOPOLOGY_CHANGE,
                handler=on_revert,
            )

        for dynamics_event in events:
            engine.schedule_at(
                dynamics_event.time,
                kind=EventKind.TOPOLOGY_CHANGE,
                payload=dynamics_event,
                handler=on_dynamics,
            )
        return outstanding

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _reset_network(self) -> None:
        self.network.release_all_locks()
        self._reconcile_topology()
        self.network.restore(self._snapshot)
        self.network.reset_stats()

    def _reconcile_topology(self) -> None:
        """Force the channel set back to the snapshotted topology.

        The dynamics undo stack restores the topology on its own in every
        normal run; this is the safety net for pathological event
        combinations (e.g. a close and an open overlapping on the same node
        pair, where one undo consumes the other's effect).  Channels the
        snapshot does not know are removed, channels it knows but the network
        lost are recreated; ``restore`` then resets every balance.
        """
        snapshot_pairs = {frozenset(pair): pair for pair in self._snapshot}
        for channel in list(self.network.channels()):
            if frozenset(channel.endpoints) not in snapshot_pairs:
                self.network.remove_channel(*channel.endpoints)
        for key, (node_a, node_b) in snapshot_pairs.items():
            if not self.network.has_channel(node_a, node_b):
                balances = self._snapshot[(node_a, node_b)]
                base_fee, fee_rate = self._channel_fees[key]
                self.network.add_channel(
                    node_a, node_b, balances[node_a], balances[node_b], base_fee, fee_rate
                )

    def _consume(
        self,
        report: SchemeStepReport,
        scheme: RoutingScheme,
        collector: MetricsCollector,
        now: float,
    ) -> None:
        """Fold one step report into the collector (and the trace).

        Terminal trace spans are emitted here and only here: interior sites
        (router, atomic executors) emit detail events, so every sampled
        payment gets exactly one ``settle``/``fail``.  ``payment_begin`` is
        idempotent and guarantees the arrival span exists even for payments
        rejected before any executor saw them.
        """
        rec = obs.RECORDER
        for payment in report.completed:
            collector.record_completed(payment, extra_delay=scheme.extra_delay(payment))
            if rec.enabled and rec.payment_begin(payment):
                settled_at = payment.completed_at if payment.completed_at is not None else now
                rec.payment_end(
                    payment, "settle", settled_at,
                    value=round(payment.value, 9),
                    latency=round(payment.latency or 0.0, 9),
                    hops=payment.hops_used,
                )
        for payment in report.failed:
            collector.record_failed(payment)
            if rec.enabled and rec.payment_begin(payment):
                rec.payment_end(
                    payment, "fail", now,
                    reason=payment.failure_reason or "unknown",
                )
        collector.add_fees(report.fees_paid)


def compare_schemes(
    network: PCNetwork,
    workload: "TransactionWorkload | StreamingWorkload",
    schemes: Sequence[RoutingScheme],
    step_size: float = 0.1,
    drain_time: float = 5.0,
    parameters: Optional[Dict[str, object]] = None,
    dynamics: Optional[Sequence[NetworkDynamicsEvent]] = None,
    batch_arrivals: bool = True,
    engine: str = "events",
) -> ExperimentResult:
    """One-call convenience wrapper used by the examples and benchmarks."""
    runner = ExperimentRunner(
        network,
        workload,
        step_size=step_size,
        drain_time=drain_time,
        dynamics=dynamics,
        batch_arrivals=batch_arrivals,
        engine=engine,
    )
    return runner.run(schemes, parameters=parameters)
