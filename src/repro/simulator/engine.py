"""A minimal discrete-event simulation engine.

The engine keeps a priority queue of :class:`~repro.simulator.events.Event`
objects and executes them in time order.  Handlers may schedule further
events (including periodic ticks), which is how the evaluation harness
drives routing-scheme steps and epoch synchronization.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional

from repro.simulator.events import Event, EventKind


class SimulationEngine:
    """Priority-queue driven discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self.now = 0.0
        self.processed_events = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, event: Event) -> None:
        """Add an event to the queue.  Scheduling in the past is an error."""
        if event.time < self.now - 1e-12:
            raise ValueError(f"cannot schedule an event at {event.time} before now ({self.now})")
        heapq.heappush(self._queue, event)

    def schedule_many(self, events: Iterable[Event]) -> int:
        """Bulk-load a batch of events onto the queue.

        Replaying a workload schedules thousands of arrival events up front;
        loading them through one ``heapify`` is O(n) instead of the O(n log n)
        of per-event pushes.  A batch larger than the *live* queue is merged
        the same way -- extend then re-heapify, O(n + m) -- while a small
        batch against a big queue keeps the O(m log n) per-event pushes
        (re-heapifying the whole queue would cost more than the pushes
        save).  Heap layout does not affect pop order: events are totally
        ordered by ``(time, sequence)``.  Returns the number scheduled.
        """
        batch = list(events)
        for event in batch:
            if event.time < self.now - 1e-12:
                raise ValueError(
                    f"cannot schedule an event at {event.time} before now ({self.now})"
                )
        if not self._queue:
            self._queue = batch
            heapq.heapify(self._queue)
        elif len(batch) > len(self._queue):
            self._queue.extend(batch)
            heapq.heapify(self._queue)
        else:
            for event in batch:
                heapq.heappush(self._queue, event)
        return len(batch)

    def schedule_at(
        self,
        time: float,
        kind: EventKind = EventKind.CUSTOM,
        payload: object = None,
        handler: Optional[Callable[["SimulationEngine", Event], None]] = None,
    ) -> Event:
        """Convenience wrapper building and scheduling an event."""
        event = Event(time=time, kind=kind, payload=payload, handler=handler)
        self.schedule(event)
        return event

    def schedule_periodic(
        self,
        start: float,
        interval: float,
        end: float,
        kind: EventKind = EventKind.SCHEME_TICK,
        handler: Optional[Callable[["SimulationEngine", Event], None]] = None,
    ) -> int:
        """Schedule a periodic event train; returns the number of occurrences."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        events: List[Event] = []
        time = start
        while time <= end + 1e-12:
            events.append(Event(time=time, kind=kind, handler=handler))
            time += interval
        return self.schedule_many(events)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        collect_events: bool = False,
    ) -> List[Event]:
        """Process events in time order.

        Args:
            until: Stop once the next event would fire after this time.
            max_events: Stop after processing this many events.
            collect_events: Accumulate and return handler-less events.  Off by
                default: a caller that ignores the return value (the
                experiment runner processes everything through handlers) would
                otherwise retain every handler-less event for the whole run.

        Returns:
            Events that had no handler (the caller is expected to act on
            them) when ``collect_events`` is set; an empty list otherwise.
        """
        unhandled: List[Event] = []
        processed = 0
        self._stopped = False
        while self._queue and not self._stopped:
            if until is not None and self._queue[0].time > until + 1e-12:
                break
            if max_events is not None and processed >= max_events:
                break
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            if event.handler is not None:
                event.handler(self, event)
            elif collect_events:
                unhandled.append(event)
            self.processed_events += 1
            processed += 1
        if until is not None:
            self.now = max(self.now, until)
        return unhandled

    def pending_count(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
