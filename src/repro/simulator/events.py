"""Event types for the discrete-event simulation engine."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_sequence = itertools.count()


class EventKind(enum.Enum):
    """Built-in event categories used by the evaluation harness."""

    PAYMENT_ARRIVAL = "payment_arrival"
    SCHEME_TICK = "scheme_tick"
    EPOCH_BOUNDARY = "epoch_boundary"
    TOPOLOGY_CHANGE = "topology_change"
    CUSTOM = "custom"


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Events order by time, then by a monotonically increasing sequence number
    so that simultaneous events execute in scheduling order (deterministic).

    Attributes:
        time: Simulation time at which the event fires.
        sequence: Tie-breaking sequence number (assigned automatically).
        kind: Event category.
        payload: Arbitrary data for the handler.
        handler: Optional callable invoked as ``handler(engine, event)``;
            events without a handler are returned to the caller of
            :meth:`~repro.simulator.engine.SimulationEngine.run`.
    """

    time: float
    sequence: int = field(default_factory=lambda: next(_sequence))
    kind: EventKind = field(default=EventKind.CUSTOM, compare=False)
    payload: Any = field(default=None, compare=False)
    handler: Optional[Callable[["object", "Event"], None]] = field(default=None, compare=False)
