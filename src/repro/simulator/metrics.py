"""Evaluation metrics.

The paper reports four quantities:

* **Transaction success ratio (TSR)** -- completed transactions over
  generated transactions,
* **Normalized throughput** -- value of completed payments over value of
  generated payments (which also normalizes by the maximum achievable
  throughput of the workload),
* **Average transaction delay** -- completion latency including the
  client-to-hub (or source-computation) delay each scheme adds,
* **Traffic overhead** -- control and synchronization messages (probes,
  management round trips, hub state synchronization) plus per-hop transfer
  messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.routing.transaction import Payment


class _FloatBuffer:
    """Append-only float64 buffer with doubling growth.

    At the xl scale a scheme can complete tens of millions of payments; a
    Python list holds each delay as a boxed float (~4x the footprint of the
    packed array this keeps).  Values are stored as float64 in arrival
    order, so the percentile math in :meth:`MetricsCollector.finalize` sees
    exactly the array ``np.asarray(list)`` used to produce.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, initial_capacity: int = 1024) -> None:
        self._data = np.empty(initial_capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: float) -> None:
        if self._size == self._data.size:
            grown = np.empty(self._data.size * 2, dtype=np.float64)
            grown[: self._size] = self._data
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    def view(self) -> np.ndarray:
        """Read-only window over the stored values (no copy)."""
        window = self._data[: self._size]
        window.flags.writeable = False
        return window


@dataclass
class SchemeMetrics:
    """Aggregated metrics of one scheme on one workload.

    Attributes:
        scheme: Scheme name.
        generated_count: Payments offered to the scheme.
        completed_count: Payments fully delivered before their deadline.
        failed_count: Payments that failed or expired.
        generated_value: Total value offered.
        completed_value: Total value of completed payments.
        success_ratio: ``completed_count / generated_count``.
        normalized_throughput: ``completed_value / generated_value``.
        average_delay: Mean completion latency (seconds) including the
            scheme's extra per-payment delay; 0.0 when nothing completed.
        median_delay: Median completion latency.
        p90_delay: 90th-percentile completion latency -- the tail the
            paper's delay plots actually compare (0.0 when nothing completed).
        p99_delay: 99th-percentile completion latency.
        overhead_messages: Total control-plane messages (probes, management,
            synchronization).
        transfer_hops: Total channel hops traversed by delivered units.
        fees_paid: Total forwarding fees collected.
        failure_reasons: Failed-payment counts keyed by machine-readable
            reason code (see :class:`repro.routing.transaction.FailureReason`);
            payments failed without a recorded cause count under ``unknown``.
        extra: Free-form per-scheme diagnostic values.
    """

    scheme: str
    generated_count: int = 0
    completed_count: int = 0
    failed_count: int = 0
    generated_value: float = 0.0
    completed_value: float = 0.0
    success_ratio: float = 0.0
    normalized_throughput: float = 0.0
    average_delay: float = 0.0
    median_delay: float = 0.0
    p90_delay: float = 0.0
    p99_delay: float = 0.0
    overhead_messages: float = 0.0
    transfer_hops: int = 0
    fees_paid: float = 0.0
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by the analysis tables."""
        row = {
            "scheme": self.scheme,
            "generated_count": self.generated_count,
            "completed_count": self.completed_count,
            "failed_count": self.failed_count,
            "generated_value": round(self.generated_value, 3),
            "completed_value": round(self.completed_value, 3),
            "success_ratio": round(self.success_ratio, 4),
            "normalized_throughput": round(self.normalized_throughput, 4),
            "average_delay": round(self.average_delay, 4),
            "median_delay": round(self.median_delay, 4),
            "p90_delay": round(self.p90_delay, 4),
            "p99_delay": round(self.p99_delay, 4),
            "overhead_messages": round(self.overhead_messages, 1),
            "transfer_hops": self.transfer_hops,
            "fees_paid": round(self.fees_paid, 4),
        }
        if self.failure_reasons:
            row["failure_reasons"] = {key: int(count) for key, count in sorted(self.failure_reasons.items())}
        row.update({key: round(value, 4) for key, value in self.extra.items()})
        return row


class MetricsCollector:
    """Accumulates per-payment outcomes for one scheme run."""

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.generated_count = 0
        self.generated_value = 0.0
        self.completed_count = 0
        self.completed_value = 0.0
        self.failed_count = 0
        self.delays = _FloatBuffer()
        self.overhead_messages = 0.0
        self.transfer_hops = 0
        self.fees_paid = 0.0
        self.failure_reasons: Dict[str, int] = {}
        self.extra: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_generated(self, value: float) -> None:
        """A payment was offered to the scheme."""
        self.generated_count += 1
        self.generated_value += value

    def record_generated_batch(self, values: Sequence[float]) -> None:
        """A whole arrival batch was offered to the scheme (epoch draining).

        Delegates per value so batched and per-arrival runs stay bit-identical
        whatever record_generated accumulates.
        """
        for value in values:
            self.record_generated(value)

    def record_completed(self, payment: Payment, extra_delay: float = 0.0) -> None:
        """A payment completed; ``extra_delay`` is the scheme's added latency."""
        self.completed_count += 1
        self.completed_value += payment.value
        latency = payment.latency if payment.latency is not None else 0.0
        self.delays.append(latency + extra_delay)
        self.transfer_hops += payment.hops_used

    def record_failed(self, payment: Payment) -> None:
        """A payment failed or expired; its reason code feeds the breakdown."""
        self.failed_count += 1
        reason = payment.failure_reason or "unknown"
        self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1

    def add_overhead(self, messages: float) -> None:
        """Add control-plane messages to the overhead counter."""
        self.overhead_messages += messages

    def add_fees(self, fees: float) -> None:
        """Add collected forwarding fees."""
        self.fees_paid += fees

    def set_extra(self, key: str, value: float) -> None:
        """Attach a scheme-specific diagnostic value."""
        self.extra[key] = value

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def finalize(self) -> SchemeMetrics:
        """Produce the aggregated metrics."""
        success_ratio = self.completed_count / self.generated_count if self.generated_count else 0.0
        throughput = self.completed_value / self.generated_value if self.generated_value else 0.0
        if len(self.delays):
            delays = self.delays.view()
            average_delay = float(np.mean(delays))
            median_delay = float(np.median(delays))
            p90_delay = float(np.percentile(delays, 90))
            p99_delay = float(np.percentile(delays, 99))
        else:
            average_delay = median_delay = p90_delay = p99_delay = 0.0
        return SchemeMetrics(
            scheme=self.scheme,
            generated_count=self.generated_count,
            completed_count=self.completed_count,
            failed_count=self.failed_count,
            generated_value=self.generated_value,
            completed_value=self.completed_value,
            success_ratio=success_ratio,
            normalized_throughput=throughput,
            average_delay=average_delay,
            median_delay=median_delay,
            p90_delay=p90_delay,
            p99_delay=p99_delay,
            overhead_messages=self.overhead_messages,
            transfer_hops=self.transfer_hops,
            fees_paid=self.fees_paid,
            failure_reasons=dict(self.failure_reasons),
            extra=dict(self.extra),
        )
