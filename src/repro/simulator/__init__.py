"""Discrete-event PCN simulator and evaluation harness.

This subpackage is the stand-in for the paper's LND-testnet deployment: a
discrete-event engine (:mod:`repro.simulator.engine`), transaction workload
generators shaped like the paper's datasets (:mod:`repro.simulator.workload`),
metric collectors for TSR / throughput / latency / overhead
(:mod:`repro.simulator.metrics`), and the :class:`~repro.simulator.experiment.ExperimentRunner`
that replays one workload over one topology under several routing schemes.
"""

from repro.simulator.engine import Event, SimulationEngine
from repro.simulator.experiment import ExperimentResult, ExperimentRunner
from repro.simulator.metrics import MetricsCollector, SchemeMetrics
from repro.simulator.workload import TransactionWorkload, WorkloadConfig, generate_workload

__all__ = [
    "Event",
    "SimulationEngine",
    "WorkloadConfig",
    "TransactionWorkload",
    "generate_workload",
    "MetricsCollector",
    "SchemeMetrics",
    "ExperimentRunner",
    "ExperimentResult",
]
