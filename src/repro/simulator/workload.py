"""Transaction workload generation.

The paper's evaluation draws transaction values from a credit-card-shaped
heavy-tailed distribution and sender/recipient pairs from a directional
distribution derived from a Lightning Network dataset, explicitly arranged
so that (i) some circulations are imbalanced enough to cause local
deadlocks, and (ii) some transactions are larger than typical channel
capacity.  :func:`generate_workload` reproduces those properties with:

* Poisson payment arrivals at a configurable rate,
* heavy-tailed values (see
  :class:`~repro.topology.datasets.TransactionValueDistribution`),
* skewed sender/recipient popularity (Zipf-like), which creates sustained
  net flows into popular recipients -- the imbalance that drains channels
  and deadlocks schemes without balance-aware routing,
* an optional explicit *deadlock motif*: a fraction of demand arranged as
  the three-node pattern of figure 1(b)/(c).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.datasets import TransactionValueDistribution
from repro.topology.network import PCNetwork

NodeId = Hashable


@dataclass(frozen=True)
class TransactionRequest:
    """One generated payment demand."""

    arrival_time: float
    sender: NodeId
    recipient: NodeId
    value: float


@dataclass
class WorkloadConfig:
    """Parameters of the workload generator.

    Attributes:
        duration: Length of the arrival process in seconds.
        arrival_rate: Mean payment arrivals per second (Poisson).
        value_distribution: Sampler for payment values.
        value_scale: Extra multiplier on sampled values (transaction-size sweeps).
        sender_skew: Zipf exponent for sender popularity (0 = uniform).
        recipient_skew: Zipf exponent for recipient popularity; higher values
            concentrate incoming funds on a few nodes and create imbalance.
        deadlock_fraction: Fraction of arrivals drawn from explicit
            three-node deadlock motifs instead of the popularity model.
        min_value: Floor on any generated value.
        seed: RNG seed.  Defaults to 0 so that two runs with the same
            configuration always draw the same workload; seeding from
            entropy/wall clock is opt-in via ``seed=None``.
    """

    duration: float = 60.0
    arrival_rate: float = 20.0
    value_distribution: TransactionValueDistribution = field(
        default_factory=lambda: TransactionValueDistribution(mean_value=8.0, tail_fraction=0.05, tail_start=40.0)
    )
    value_scale: float = 1.0
    sender_skew: float = 0.6
    recipient_skew: float = 1.0
    deadlock_fraction: float = 0.15
    min_value: float = 1.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0.0 <= self.deadlock_fraction <= 1.0:
            raise ValueError("deadlock_fraction must be in [0, 1]")


@dataclass
class TransactionWorkload:
    """A generated workload: the request list plus summary statistics."""

    requests: List[TransactionRequest]
    config: WorkloadConfig
    deadlock_motifs: List[Tuple[NodeId, NodeId, NodeId]] = field(default_factory=list)

    @property
    def total_value(self) -> float:
        """Sum of all generated payment values."""
        return sum(request.value for request in self.requests)

    @property
    def count(self) -> int:
        """Number of generated payments."""
        return len(self.requests)

    def _sorted_arrivals(self) -> Tuple[List[float], List[TransactionRequest]]:
        """Arrival times and requests sorted by time (cached, stable order).

        The cache is invalidated when the request list is replaced or its
        length changes; in-place replacement of individual entries is not
        supported.
        """
        cached = self.__dict__.get("_arrival_cache")
        if (
            cached is not None
            and cached[0] is self.requests
            and cached[1] == len(self.requests)
        ):
            return cached[2], cached[3]
        ordered = sorted(
            range(len(self.requests)), key=lambda i: (self.requests[i].arrival_time, i)
        )
        ordered_requests = [self.requests[i] for i in ordered]
        times = [r.arrival_time for r in ordered_requests]
        self.__dict__["_arrival_cache"] = (
            self.requests,
            len(self.requests),
            times,
            ordered_requests,
        )
        return times, ordered_requests

    def requests_between(self, start: float, end: float) -> List[TransactionRequest]:
        """Requests with ``start < arrival_time <= end``.

        Used by stepped replay harnesses that pull arrivals window by window
        (the engine-driven runner instead schedules each request as its own
        event).  One precomputed sorted arrival index plus
        :func:`bisect.bisect` slicing makes each per-window call
        O(log n + matches) instead of a full O(n) scan.
        """
        times, ordered_requests = self._sorted_arrivals()
        lo = bisect.bisect_right(times, start)
        hi = bisect.bisect_right(times, end)
        return ordered_requests[lo:hi]


def _zipf_weights(count: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity weights over a random permutation of the nodes."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(count)
    rng.shuffle(weights)
    return weights / weights.sum()


def _find_deadlock_motifs(
    network: PCNetwork,
    rng: np.random.Generator,
    max_motifs: int = 10,
) -> List[Tuple[NodeId, NodeId, NodeId]]:
    """Find (A, C, B) triples where A-C and C-B are channels but A-B is not.

    Reproduces the local-deadlock example of figure 1: sustained flows
    A -> B (via C) and C -> B, with B -> A returning funds, drain C's side of
    the C-B channel when routing ignores balance.
    """
    nodes = list(network.nodes())
    rng.shuffle(nodes)
    motifs: List[Tuple[NodeId, NodeId, NodeId]] = []
    for relay in nodes:
        neighbors = network.neighbors(relay)
        if len(neighbors) < 2:
            continue
        rng.shuffle(neighbors)
        for i in range(len(neighbors) - 1):
            for j in range(i + 1, len(neighbors)):
                a, b = neighbors[i], neighbors[j]
                if a == b or network.has_channel(a, b):
                    continue  # a triangle is not the figure-1 motif
                motifs.append((a, relay, b))
                break
            else:
                continue
            break
        if len(motifs) >= max_motifs:
            break
    return motifs


#: Exponential draws per chunk of the vectorized arrival loop.
_ARRIVAL_CHUNK = 1024


def _weighted_choice_cdf(weights: np.ndarray) -> np.ndarray:
    """The cumulative distribution ``Generator.choice(p=...)`` samples against.

    Replicates choice's internal arithmetic term for term (cumsum, then
    normalization by the last entry) so ``cdf.searchsorted(u, "right")``
    over batched uniforms selects bit-identically to per-element
    ``rng.choice(n, p=weights)`` calls on the same stream.
    """
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    return cdf


def _arrival_times_python(times_rng: np.random.Generator, config: WorkloadConfig) -> List[float]:
    """The scalar arrival loop: one exponential gap at a time."""
    times: List[float] = []
    time = 0.0
    scale = 1.0 / config.arrival_rate
    while True:
        time += float(times_rng.exponential(scale))
        if time > config.duration:
            return times
        times.append(time)


def _arrival_times_numpy(times_rng: np.random.Generator, config: WorkloadConfig) -> List[float]:
    """Chunked cumulative sums of exponential gaps, bit-identical to the loop.

    ``cumsum`` accumulates left to right exactly like the scalar running
    sum once the previous chunk's last time is folded into the chunk's
    first gap; extra draws past the crossing are discarded, which is safe
    because the arrival stream owns its dedicated child generator.
    """
    times: List[float] = []
    scale = 1.0 / config.arrival_rate
    offset = 0.0
    while True:
        gaps = times_rng.exponential(scale, size=_ARRIVAL_CHUNK)
        gaps[0] += offset
        cumulative = np.cumsum(gaps)
        crossed = np.nonzero(cumulative > config.duration)[0]
        if crossed.size:
            times.extend(cumulative[: int(crossed[0])].tolist())
            return times
        times.extend(cumulative.tolist())
        offset = float(cumulative[-1])


def generate_workload(
    network: PCNetwork,
    config: Optional[WorkloadConfig] = None,
    senders: Optional[Sequence[NodeId]] = None,
    recipients: Optional[Sequence[NodeId]] = None,
    backend: str = "numpy",
) -> TransactionWorkload:
    """Generate a Poisson transaction workload over a network's clients.

    The generator is phased -- arrival times, values, motif mixing, pair
    selection -- with each phase drawing from its own child generator
    (``rng.spawn``), so the ``numpy`` backend can batch every phase while
    the ``python`` backend draws the identical values one element at a
    time.  The two backends produce bit-identical request streams (pinned
    by ``tests/simulator/test_workload.py``).

    Args:
        network: Topology whose client nodes send and receive payments.
        config: Workload parameters (defaults to :class:`WorkloadConfig`).
        senders: Restrict the sending population (defaults to all clients, or
            all nodes when the network has no client-role nodes).
        recipients: Restrict the receiving population (same default).
        backend: ``"numpy"`` (default) batches the draws; ``"python"`` is
            the scalar reference loop.
    """
    config = config or WorkloadConfig()
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown backend {backend!r}; expected 'python' or 'numpy'")
    rng = np.random.default_rng(config.seed)

    population = network.clients() or network.nodes()
    sender_pool = list(senders) if senders is not None else list(population)
    recipient_pool = list(recipients) if recipients is not None else list(population)
    if len(sender_pool) < 2 or len(recipient_pool) < 2:
        raise ValueError("the workload needs at least two senders and two recipients")

    sender_weights = _zipf_weights(len(sender_pool), config.sender_skew, rng)
    recipient_weights = _zipf_weights(len(recipient_pool), config.recipient_skew, rng)
    motifs = (
        _find_deadlock_motifs(network, rng) if config.deadlock_fraction > 0 else []
    )
    times_rng, value_rng, mix_rng, motif_rng, pattern_rng, pair_rng = rng.spawn(6)

    # Phase 1: Poisson arrival times.
    if backend == "numpy":
        times = _arrival_times_numpy(times_rng, config)
    else:
        times = _arrival_times_python(times_rng, config)
    count = len(times)
    if count == 0:
        return TransactionWorkload(requests=[], config=config, deadlock_motifs=motifs)

    # Phase 2: payment values (one batched draw either way: the sampler's
    # internal body/tail composition is a single distribution call).
    raw_values = config.value_distribution.sample(value_rng, size=count)
    if backend == "numpy":
        values = np.maximum(raw_values * config.value_scale, config.min_value).tolist()
    else:
        values = [
            max(float(raw_values[i]) * config.value_scale, config.min_value)
            for i in range(count)
        ]

    # Phase 3: which arrivals draw from the explicit deadlock motifs.
    if motifs:
        if backend == "numpy":
            motif_mask = (mix_rng.random(count) < config.deadlock_fraction).tolist()
        else:
            motif_mask = [
                mix_rng.random() < config.deadlock_fraction for _ in range(count)
            ]
    else:
        motif_mask = [False] * count
    motif_count = sum(motif_mask)
    pair_count = count - motif_count

    # Phase 4a: motif pairs (figure 1's A and C push towards B, B returns to
    # A, so C's outgoing funds drain unless routing keeps channels balanced).
    motif_pairs: List[Tuple[NodeId, NodeId]] = []
    if motif_count:
        if backend == "numpy":
            indices = motif_rng.integers(len(motifs), size=motif_count)
            patterns = pattern_rng.random(motif_count)
        else:
            indices = [int(motif_rng.integers(len(motifs))) for _ in range(motif_count)]
            patterns = [pattern_rng.random() for _ in range(motif_count)]
        for index, pattern in zip(indices, patterns):
            a, relay, b = motifs[int(index)]
            if pattern < 0.4:
                motif_pairs.append((a, b))
            elif pattern < 0.8:
                motif_pairs.append((relay, b))
            else:
                motif_pairs.append((b, a))

    # Phase 4b: popularity-model pairs.  The batched path replicates
    # Generator.choice's cdf-searchsorted arithmetic over a (count, 2)
    # uniform block, whose row-major fill order matches the scalar backend's
    # interleaved sender/recipient draws from the same stream.
    model_pairs: List[Tuple[NodeId, NodeId]] = []
    if pair_count:
        if backend == "numpy":
            uniforms = pair_rng.random((pair_count, 2))
            sender_rows = _weighted_choice_cdf(sender_weights).searchsorted(
                uniforms[:, 0], side="right"
            )
            recipient_rows = _weighted_choice_cdf(recipient_weights).searchsorted(
                uniforms[:, 1], side="right"
            )
            model_pairs = [
                (sender_pool[int(s)], recipient_pool[int(r)])
                for s, r in zip(sender_rows, recipient_rows)
            ]
        else:
            for _ in range(pair_count):
                sender_row = int(pair_rng.choice(len(sender_pool), p=sender_weights))
                recipient_row = int(pair_rng.choice(len(recipient_pool), p=recipient_weights))
                model_pairs.append((sender_pool[sender_row], recipient_pool[recipient_row]))

    # Assembly: self-pairs are dropped (their draws stay consumed, so both
    # backends skip the identical elements).
    requests: List[TransactionRequest] = []
    motif_at = 0
    model_at = 0
    for i in range(count):
        if motif_mask[i]:
            sender, recipient = motif_pairs[motif_at]
            motif_at += 1
        else:
            sender, recipient = model_pairs[model_at]
            model_at += 1
        if sender == recipient:
            continue
        requests.append(
            TransactionRequest(
                arrival_time=times[i], sender=sender, recipient=recipient, value=values[i]
            )
        )
    return TransactionWorkload(requests=requests, config=config, deadlock_motifs=motifs)


def circular_demand_workload(
    nodes: Sequence[NodeId],
    value_per_payment: float,
    payments_per_pair: int,
    duration: float,
    seed: Optional[int] = 0,
) -> TransactionWorkload:
    """A synthetic balanced circulation: every node pays the next one in a ring.

    Useful for tests and ablations: a balanced circulation is sustainable
    indefinitely by a balance-aware router, so completion ratios should stay
    high; routers that ignore balance drain channels and stall.
    """
    if len(nodes) < 2:
        raise ValueError("need at least two nodes for a circulation")
    rng = np.random.default_rng(seed)
    requests: List[TransactionRequest] = []
    total = payments_per_pair * len(nodes)
    times = np.sort(rng.uniform(0.0, duration, size=total))
    index = 0
    for round_number in range(payments_per_pair):
        for position, sender in enumerate(nodes):
            recipient = nodes[(position + 1) % len(nodes)]
            requests.append(
                TransactionRequest(
                    arrival_time=float(times[index]),
                    sender=sender,
                    recipient=recipient,
                    value=value_per_payment,
                )
            )
            index += 1
    config = WorkloadConfig(duration=duration, arrival_rate=max(total / duration, 1e-6), seed=seed)
    return TransactionWorkload(requests=requests, config=config)


@dataclass
class StreamingWorkload:
    """A workload delivered in chunks instead of one materialized list.

    Trace replays (see :mod:`repro.data.ripple`) can be far larger than
    anything worth holding as Python objects; this wrapper carries the
    summary statistics the experiment runner reports up front and yields
    :class:`TransactionRequest` chunks on demand, in arrival order.  The
    runner detects it by the presence of :meth:`iter_chunks` and drains
    arrivals through a pull cursor instead of pre-scheduling every payment
    as an engine event.

    Attributes:
        config: Workload parameters (duration drives the experiment end
            time, exactly as for :class:`TransactionWorkload`).
        count: Total number of payments the stream will yield.
        total_value: Sum of all payment values in the stream.
        chunk_factory: Zero-argument callable returning a fresh iterator of
            request chunks; called once per replay so a workload can be
            replayed by multiple schemes/runs.
        deadlock_motifs: Present for interface parity with
            :class:`TransactionWorkload`; trace replays have none.
    """

    config: WorkloadConfig
    count: int
    total_value: float
    chunk_factory: Callable[[], Iterator[List[TransactionRequest]]]
    deadlock_motifs: List[Tuple[NodeId, NodeId, NodeId]] = field(default_factory=list)

    def iter_chunks(self) -> Iterator[List[TransactionRequest]]:
        """A fresh pass over the stream, yielding time-ordered chunks."""
        return self.chunk_factory()

    def materialize(self) -> TransactionWorkload:
        """Collect the whole stream into a plain :class:`TransactionWorkload`.

        Intended for tests and small traces -- it defeats the point of
        streaming for large ones.
        """
        requests = [request for chunk in self.iter_chunks() for request in chunk]
        return TransactionWorkload(
            requests=requests,
            config=self.config,
            deadlock_motifs=list(self.deadlock_motifs),
        )
