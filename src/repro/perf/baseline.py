"""Baseline load/compare/update logic for the perf regression gate.

The committed baseline (``benchmarks/perf_baseline.json``) stores, per
benchmark, the *normalized* time (best time divided by the machine-speed
calibration, see :mod:`repro.perf.harness`) measured when the baseline was
last updated.  ``python -m repro perf --check`` re-runs the suite and fails
when any benchmark's normalized time exceeds its baseline by more than the
tolerance (default 25%); ``--update-baseline`` rewrites the file from the
current run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.harness import BenchmarkReport

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "perf_baseline.json")

#: Allowed normalized-time growth before a benchmark counts as regressed.
DEFAULT_TOLERANCE = 0.25

#: Allowed peak-memory growth before a benchmark counts as regressed.  Peak
#: tracemalloc numbers are far more stable across machines than wall-clock
#: times (no calibration needed), but allocator and version noise still
#: exists, so the ceiling is generous: memory gating is for catching a
#: structure accidentally materialized per item, not 5% drift.
DEFAULT_MEMORY_TOLERANCE = 0.50


@dataclass
class BaselineEntry:
    """Stored expectation for one benchmark.

    ``peak_mib`` of 0 means the entry predates the memory probe (or the run
    was profiled externally); such entries gate on time only.
    """

    name: str
    normalized: float
    best_seconds: float
    peak_mib: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        data = {"normalized": self.normalized, "best_seconds": self.best_seconds}
        if self.peak_mib > 0:
            data["peak_mib"] = self.peak_mib
        return data


@dataclass
class BaselineComparison:
    """Outcome of comparing a report against a baseline.

    ``regressions`` carries ``(name, baseline, current, ratio)`` tuples for
    benchmarks above tolerance; ``missing`` lists baseline entries the run
    did not produce (also a gate failure: a silently-dropped benchmark must
    not pass), ``new`` lists benchmarks without a stored expectation
    (informational only).
    """

    tolerance: float
    regressions: List[tuple] = field(default_factory=list)
    improvements: List[tuple] = field(default_factory=list)
    unchanged: List[str] = field(default_factory=list)
    new: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def summary_lines(self) -> List[str]:
        lines = []
        for name, base, current, ratio in self.regressions:
            unit = "peak MiB" if name.endswith(" [memory]") else "normalized"
            lines.append(
                f"REGRESSION {name}: {unit} {current:.3f} vs baseline {base:.3f} "
                f"({(ratio - 1.0) * 100.0:+.1f}%, tolerance {self.tolerance * 100.0:.0f}%)"
            )
        for name in self.missing:
            lines.append(f"MISSING {name}: present in baseline but not in this run")
        for name, base, current, ratio in self.improvements:
            lines.append(
                f"improved {name}: normalized {current:.3f} vs baseline {base:.3f} "
                f"({(ratio - 1.0) * 100.0:+.1f}%)"
            )
        for name in self.new:
            lines.append(f"new {name}: no baseline entry yet (run --update-baseline)")
        if not lines:
            lines.append("all benchmarks within tolerance")
        return lines


def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Optional[Dict[str, BaselineEntry]]:
    """The committed baseline entries by name, or ``None`` when absent."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entries = {}
    for name, stored in data.get("entries", {}).items():
        entries[name] = BaselineEntry(
            name=name,
            normalized=float(stored["normalized"]),
            best_seconds=float(stored.get("best_seconds", 0.0)),
            peak_mib=float(stored.get("peak_mib", 0.0)),
        )
    return entries


def filter_entries(
    entries: Dict[str, BaselineEntry], scales: List[str]
) -> Dict[str, BaselineEntry]:
    """Restrict baseline entries to the given suite scales.

    Benchmark names are ``<group>/<scale>/<variant>``; a partial-suite run
    (CI runs only ``small``) must not fail the gate for the scales it never
    executed, while a dropped benchmark *within* an executed scale still
    counts as missing.
    """
    wanted = set(scales)
    filtered = {}
    for name, entry in entries.items():
        parts = name.split("/")
        if len(parts) >= 2 and parts[1] in wanted:
            filtered[name] = entry
    return filtered


def compare_report(
    report: BenchmarkReport,
    baseline: Dict[str, BaselineEntry],
    tolerance: float = DEFAULT_TOLERANCE,
    improvement_margin: float = 0.10,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
) -> BaselineComparison:
    """Compare a report's normalized times against the baseline entries.

    Only benchmarks present in the baseline gate the result; new benchmarks
    are reported informationally, baseline entries missing from the run fail
    the gate.  Benchmarks faster than baseline by more than
    ``improvement_margin`` are listed as improvements (a hint to re-baseline
    so future regressions are caught from the new level).

    Benchmarks whose baseline entry stores a ``peak_mib`` additionally gate
    on memory: a peak above the baseline by more than ``memory_tolerance``
    is a regression (reported as ``<name> [memory]``), so an accidental
    per-item materialization fails CI exactly like a slowdown.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if memory_tolerance < 0:
        raise ValueError("memory_tolerance must be non-negative")
    comparison = BaselineComparison(tolerance=tolerance)
    seen = set()
    for record in report.records:
        seen.add(record.name)
        entry = baseline.get(record.name)
        if entry is None:
            comparison.new.append(record.name)
            continue
        if entry.peak_mib > 0 and record.peak_mib > 0:
            memory_ratio = record.peak_mib / entry.peak_mib
            if memory_ratio > 1.0 + memory_tolerance:
                comparison.regressions.append(
                    (f"{record.name} [memory]", entry.peak_mib, record.peak_mib, memory_ratio)
                )
        if entry.normalized <= 0:
            comparison.unchanged.append(record.name)
            continue
        ratio = record.normalized / entry.normalized
        row = (record.name, entry.normalized, record.normalized, ratio)
        if ratio > 1.0 + tolerance:
            comparison.regressions.append(row)
        elif ratio < 1.0 - improvement_margin:
            comparison.improvements.append(row)
        else:
            comparison.unchanged.append(record.name)
    comparison.missing = sorted(set(baseline) - seen)
    return comparison


def update_baseline(report: BenchmarkReport, path: str = DEFAULT_BASELINE_PATH) -> None:
    """Rewrite the baseline file from a report.

    Entries for scales the run did not execute are preserved (a partial
    ``--suite small`` update must not drop medium/large coverage), while
    stale entries *within* an executed scale -- a benchmark that was renamed
    or removed -- are dropped, so a rename never wedges the gate in a state
    no CLI invocation can clear.
    """
    existing = load_baseline(path) or {}
    covered_scales = {record.scale for record in report.records}
    fresh_names = {record.name for record in report.records}
    for name in list(existing):
        parts = name.split("/")
        if len(parts) >= 2 and parts[1] in covered_scales and name not in fresh_names:
            del existing[name]
    for record in report.records:
        existing[record.name] = BaselineEntry(
            name=record.name,
            normalized=record.normalized,
            best_seconds=record.best_seconds,
            peak_mib=record.peak_mib,
        )
    payload = {
        "schema": 1,
        "revision": report.revision,
        "calibration_seconds": report.calibration_seconds,
        "environment": dict(report.environment),
        "entries": {name: entry.as_dict() for name, entry in sorted(existing.items())},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
