"""Benchmark suites: routing step, scenario run, path generation, placement.

Each scale (``small``/``medium``/``large``) defines one suite of five
benchmark groups:

* ``routing-step`` -- one epoch of Algorithm 2's price/rate update
  (required-funds report, equations 21-22 over every channel, equation 26
  over every registered path) plus the per-interval arrival observations,
  on a synthetic multipath state.  Measured once per backend; the
  ``python``/``numpy`` pair is what the speedup gate watches.
* ``scenario-run`` -- a full engine-driven experiment run of the Splicer
  scheme over a Watts-Strogatz topology (workload replay, dispatch, HTLC
  locks, metrics).
* ``path-generation`` -- per-pair path-catalog generation with all four
  Table-II selectors (KSP / heuristic / EDW / EDS) on a figure-8-family
  topology, once per graph backend; the ``python``/``numpy`` pair gates
  the vectorized topology layer.  The large scale runs at the paper's
  figure-8 network size (3000 nodes), where path generation dominated
  pipeline setup before the CSR backend.
* ``fig8-compare`` -- one comparison step of the figure-8 pipeline: the four
  source-routing baselines replayed over one workload with epoch-batched
  dispatch, once per execution backend; the ``python``/``numpy`` pair gates
  the batched baseline backends.
* ``scheme-zoo`` -- the non-source-routing additions to the comparison
  (SpeedyMurmurs' embedding routing with churn-reactive repair, and the
  waterfilling splitter) replayed over one workload, once per execution
  backend; the ``python``/``numpy`` pair gates their batched executors.
* ``placement-solver`` -- the placement facade on the same topology family
  (exact method at small scale, double-greedy above), once per execution
  backend; the ``python``/``numpy`` pair gates the vectorized placement
  layer at the greedy scales.

The ``xl-small`` suite is separate: it contains only the
``xl-epoch-stepper`` group, which replays a payment-heavy workload through
a constant-time null scheme under both execution engines -- the per-event
reference loop (``events``) and the array-native epoch stepper
(``epoch``).  The null scheme isolates the engine's per-payment dispatch
machinery (event objects, heap traffic vs one ``searchsorted`` slice per
drain), which is exactly the overhead the xl scale tier eliminates; the
``events``/``epoch`` pair gates the stepper's speedup the same way the
``python``/``numpy`` pairs gate the array backends.

Everything is seeded; two runs on one machine measure the same work.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.perf.harness import BenchmarkSpec
from repro.routing.prices import PriceTable
from repro.routing.rate_control import PathRateController
from repro.simulator.experiment import ExperimentRunner
from repro.simulator.workload import WorkloadConfig, generate_workload
from repro.topology.network import PCNetwork
from repro.topology.generators import watts_strogatz_pcn

#: Scale parameters of the three suites.
SCALES: Dict[str, Dict[str, object]] = {
    "small": {
        "pairs": 60,
        "paths_per_pair": 3,
        "observe_every": 3,
        "nodes": 30,
        "duration": 2.0,
        "arrival_rate": 10.0,
        "placement_method": "exact",
        "candidate_fraction": 0.2,
        "pathgen_nodes": 200,
        "pathgen_pairs": 12,
        "pathgen_k": 3,
    },
    "medium": {
        "pairs": 300,
        "paths_per_pair": 4,
        "observe_every": 3,
        "nodes": 60,
        "duration": 3.0,
        "arrival_rate": 15.0,
        "placement_method": "greedy",
        "candidate_fraction": 0.2,
        "pathgen_nodes": 1000,
        "pathgen_pairs": 10,
        "pathgen_k": 5,
    },
    "large": {
        "pairs": 1200,
        "paths_per_pair": 5,
        "observe_every": 3,
        "nodes": 100,
        "duration": 4.0,
        "arrival_rate": 20.0,
        "placement_method": "greedy",
        "candidate_fraction": 0.15,
        "pathgen_nodes": 3000,
        "pathgen_pairs": 10,
        "pathgen_k": 5,
    },
}


# ---------------------------------------------------------------------- #
# routing step
# ---------------------------------------------------------------------- #
class _RoutingStepState:
    """Synthetic hub-relay multipath state driving one epoch update per call.

    ``pairs`` source/target pairs, each with ``paths_per_pair`` disjoint
    two-hop paths through private relays (the classic multipath motif), with
    seeded rates, demand caps and a rotating subset of pairs observing
    transfers each epoch -- the state shape the router maintains mid-run.
    """

    def __init__(self, pairs: int, paths_per_pair: int, observe_every: int, backend: str) -> None:
        rng = np.random.default_rng(20230710)
        network = PCNetwork()
        self.pairs = []
        for i in range(pairs):
            source, target = f"s{i}", f"t{i}"
            network.add_node(source)
            network.add_node(target)
            paths = []
            for k in range(paths_per_pair):
                relay = f"r{i}_{k}"
                network.add_node(relay)
                near = 50.0 + 100.0 * rng.random()
                far = 50.0 + 100.0 * rng.random()
                network.add_channel(source, relay, near, near)
                network.add_channel(relay, target, far, far)
                paths.append((source, relay, target))
            self.pairs.append(((source, target), paths))
        self.table = PriceTable(network, backend=backend)
        self.controller = PathRateController(
            backend=backend, min_rate=0.5, initial_rate=5.0, alpha=1.0
        )
        for (source, target), paths in self.pairs:
            state = self.controller.register_pair(source, target, paths)
            state.rates = [float(rate) for rate in 10.0 * rng.random(len(paths)) + 1.0]
            if rng.random() < 0.5:
                state.demand_rate = float(20.0 * rng.random() + 5.0)
        self.observe_every = observe_every
        self.settlement_delay = 0.2
        self._epoch = 0

    def step(self) -> None:
        # A rotating third of the pairs carried traffic since the last update.
        offset = self._epoch % self.observe_every
        for (_, paths) in self.pairs[offset :: self.observe_every]:
            for path in paths[:2]:
                for sender, receiver in zip(path, path[1:]):
                    self.table.observe_transfer(sender, receiver, 5.0)
        self.controller.report_required_funds(self.table, self.settlement_delay)
        self.table.update_all()
        self.controller.update_rates(self.table)
        self._epoch += 1


def _routing_step_specs(scale: str) -> List[BenchmarkSpec]:
    params = SCALES[scale]
    pairs = int(params["pairs"])
    paths_per_pair = int(params["paths_per_pair"])
    observe_every = int(params["observe_every"])
    inner = {"small": 20, "medium": 10, "large": 5}[scale]
    specs = []
    for backend in ("python", "numpy"):
        specs.append(
            BenchmarkSpec(
                name=f"routing-step/{scale}/{backend}",
                group="routing-step",
                scale=scale,
                variant=backend,
                setup=lambda backend=backend: _RoutingStepState(
                    pairs, paths_per_pair, observe_every, backend
                ),
                fn=lambda state: state.step(),
                inner=inner,
                meta={"pairs": pairs, "paths_per_pair": paths_per_pair},
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# scenario run
# ---------------------------------------------------------------------- #
class _ScenarioRunState:
    """A funded topology plus workload; each call replays the full run."""

    def __init__(self, nodes: int, duration: float, arrival_rate: float) -> None:
        # Imported lazily: baselines import the simulator package.
        from repro.baselines.splicer_scheme import SplicerScheme

        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=4,
            rewire_probability=0.2,
            uniform_channel_size=200.0,
            candidate_fraction=0.2,
            seed=11,
        )
        self.workload = generate_workload(
            self.network,
            WorkloadConfig(duration=duration, arrival_rate=arrival_rate, seed=5),
        )
        self.runner = ExperimentRunner(self.network, self.workload, step_size=0.1)
        self._scheme_factory = SplicerScheme

    def step(self) -> None:
        scheme = self._scheme_factory()
        self.runner.run_single(scheme, rng=np.random.default_rng(3))


def _scenario_run_spec(scale: str) -> BenchmarkSpec:
    params = SCALES[scale]
    nodes = int(params["nodes"])
    duration = float(params["duration"])
    arrival_rate = float(params["arrival_rate"])
    return BenchmarkSpec(
        name=f"scenario-run/{scale}/-",
        group="scenario-run",
        scale=scale,
        variant="-",
        setup=lambda: _ScenarioRunState(nodes, duration, arrival_rate),
        fn=lambda state: state.step(),
        inner=1,
        meta={"nodes": nodes, "duration": duration, "arrival_rate": arrival_rate},
    )


# ---------------------------------------------------------------------- #
# path generation
# ---------------------------------------------------------------------- #
class _PathGenerationState:
    """A figure-8-family topology plus a seeded pair sample.

    Each call regenerates the full per-pair Table-II path catalog (all four
    selectors at the scale's ``k``) on the chosen graph backend -- the
    setup work one compare-shard worker performs before routing anything.
    Balances are skewed by seeded transfers first so the widest-path and
    heuristic selectors rank over non-degenerate liquidity.
    """

    def __init__(self, nodes: int, pairs: int, k: int, backend: str) -> None:
        # Imported lazily: the suites module predates the routing selectors.
        from repro.routing.paths import PATH_SELECTORS

        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=8,
            rewire_probability=0.25,
            uniform_channel_size=200.0,
            candidate_fraction=0.08,
            seed=29,
        )
        rng = np.random.default_rng(31)
        for channel in self.network.channels():
            channel.transfer(
                channel.node_a, float(rng.uniform(0.0, 0.9 * channel.balance(channel.node_a)))
            )
        node_list = self.network.nodes()
        sampled = []
        while len(sampled) < pairs:
            source = node_list[int(rng.integers(len(node_list)))]
            target = node_list[int(rng.integers(len(node_list)))]
            if source != target:
                sampled.append((source, target))
        self.pairs = sampled
        self.k = k
        self.backend = backend
        self.selectors = [PATH_SELECTORS[name] for name in ("ksp", "heuristic", "edw", "eds")]

    def step(self) -> None:
        for source, target in self.pairs:
            for selector in self.selectors:
                selector(self.network, source, target, self.k, backend=self.backend)


def _path_generation_specs(scale: str) -> List[BenchmarkSpec]:
    params = SCALES[scale]
    nodes = int(params["pathgen_nodes"])
    pairs = int(params["pathgen_pairs"])
    k = int(params["pathgen_k"])
    specs = []
    for backend in ("python", "numpy"):
        specs.append(
            BenchmarkSpec(
                name=f"path-generation/{scale}/{backend}",
                group="path-generation",
                scale=scale,
                variant=backend,
                setup=lambda backend=backend: _PathGenerationState(nodes, pairs, k, backend),
                fn=lambda state: state.step(),
                inner=1,
                meta={"nodes": nodes, "pairs": pairs, "k": k},
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# figure-8 comparison step
# ---------------------------------------------------------------------- #
class _Fig8CompareState:
    """One comparison step: the four baselines replayed over one workload.

    Fresh scheme instances per call (path catalogs and balance mirrors are
    rebuilt each run, exactly as the compare pipeline does); the topology and
    workload are built once.
    """

    def __init__(self, nodes: int, duration: float, arrival_rate: float, backend: str) -> None:
        from repro.baselines import (
            FlashScheme,
            LandmarkScheme,
            ShortestPathScheme,
            SpiderScheme,
        )

        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=4,
            rewire_probability=0.2,
            uniform_channel_size=200.0,
            candidate_fraction=0.2,
            seed=17,
        )
        self.workload = generate_workload(
            self.network,
            WorkloadConfig(duration=duration, arrival_rate=arrival_rate, seed=23),
        )
        self.runner = ExperimentRunner(self.network, self.workload, step_size=0.1)
        self._factories = [
            lambda: SpiderScheme(backend=backend),
            lambda: FlashScheme(backend=backend, seed=3),
            lambda: LandmarkScheme(backend=backend),
            lambda: ShortestPathScheme(backend=backend),
        ]

    def step(self) -> None:
        self.runner.run(
            [factory() for factory in self._factories], rng=np.random.default_rng(9)
        )


def _fig8_compare_specs(scale: str) -> List[BenchmarkSpec]:
    params = SCALES[scale]
    nodes = int(params["nodes"])
    duration = float(params["duration"])
    arrival_rate = float(params["arrival_rate"])
    specs = []
    for backend in ("python", "numpy"):
        specs.append(
            BenchmarkSpec(
                name=f"fig8-compare/{scale}/{backend}",
                group="fig8-compare",
                scale=scale,
                variant=backend,
                setup=lambda backend=backend: _Fig8CompareState(
                    nodes, duration, arrival_rate, backend
                ),
                fn=lambda state: state.step(),
                inner=1,
                meta={"nodes": nodes, "duration": duration, "arrival_rate": arrival_rate},
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# scheme zoo (SpeedyMurmurs + waterfilling)
# ---------------------------------------------------------------------- #
class _SchemeZooState:
    """The embedding and waterfilling schemes replayed over one workload.

    Same shape as the fig8-compare state, but the work profile is very
    different: SpeedyMurmurs spends its time in BFS embedding builds and
    greedy coordinate walks, waterfilling in edge-disjoint path generation
    and the shares hook of the atomic executor.
    """

    def __init__(self, nodes: int, duration: float, arrival_rate: float, backend: str) -> None:
        from repro.baselines import SpeedyMurmursScheme, WaterfillingScheme

        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=4,
            rewire_probability=0.2,
            uniform_channel_size=200.0,
            candidate_fraction=0.2,
            seed=17,
        )
        self.workload = generate_workload(
            self.network,
            WorkloadConfig(duration=duration, arrival_rate=arrival_rate, seed=23),
        )
        self.runner = ExperimentRunner(self.network, self.workload, step_size=0.1)
        self._factories = [
            lambda: SpeedyMurmursScheme(backend=backend),
            lambda: WaterfillingScheme(backend=backend),
        ]

    def step(self) -> None:
        self.runner.run(
            [factory() for factory in self._factories], rng=np.random.default_rng(9)
        )


def _scheme_zoo_specs(scale: str) -> List[BenchmarkSpec]:
    params = SCALES[scale]
    nodes = int(params["nodes"])
    duration = float(params["duration"])
    arrival_rate = float(params["arrival_rate"])
    specs = []
    for backend in ("python", "numpy"):
        specs.append(
            BenchmarkSpec(
                name=f"scheme-zoo/{scale}/{backend}",
                group="scheme-zoo",
                scale=scale,
                variant=backend,
                setup=lambda backend=backend: _SchemeZooState(
                    nodes, duration, arrival_rate, backend
                ),
                fn=lambda state: state.step(),
                inner=1,
                meta={"nodes": nodes, "duration": duration, "arrival_rate": arrival_rate},
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# placement solver
# ---------------------------------------------------------------------- #
class _PlacementState:
    """A candidate-bearing topology; each call re-solves placement.

    The cost model is rebuilt per call (hop-count probing included), so the
    measurement covers the full ``solve_placement(network)`` path exactly as
    the Splicer system and the figure-9 pipeline invoke it.  The ``python``/
    ``numpy`` variant pair gates the vectorized placement backend; note the
    small scale solves with the exact method, whose subset scoring is pinned
    to the scalar reference arithmetic by design, so only the greedy scales
    (medium/large) are expected to show a backend speedup.
    """

    def __init__(self, nodes: int, candidate_fraction: float, method: str, backend: str) -> None:
        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=4,
            rewire_probability=0.2,
            uniform_channel_size=200.0,
            candidate_fraction=candidate_fraction,
            seed=13,
        )
        self.method = method
        self.backend = backend

    def step(self) -> None:
        from repro.placement.solver import solve_placement

        solve_placement(
            self.network, omega=0.05, method=self.method, seed=0, backend=self.backend
        )


def _placement_specs(scale: str) -> List[BenchmarkSpec]:
    params = SCALES[scale]
    nodes = int(params["nodes"])
    method = str(params["placement_method"])
    candidate_fraction = float(params["candidate_fraction"])
    specs = []
    for backend in ("python", "numpy"):
        specs.append(
            BenchmarkSpec(
                name=f"placement-solver/{scale}/{backend}",
                group="placement-solver",
                scale=scale,
                variant=backend,
                setup=lambda backend=backend: _PlacementState(
                    nodes, candidate_fraction, method, backend
                ),
                fn=lambda state: state.step(),
                inner=1,
                meta={"nodes": nodes, "method": method},
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# epoch stepper (the xl-small suite)
# ---------------------------------------------------------------------- #
#: Parameters of the engine-overhead suite: a small topology carrying a
#: payment-heavy workload, so per-payment engine machinery dominates.
XL_SCALES: Dict[str, Dict[str, object]] = {
    "xl-small": {"nodes": 400, "duration": 8.0, "arrival_rate": 12500.0},
}

_NULL_SCHEME_CLS = None


def _null_scheme_class():
    """A constant-time sink scheme (lazily defined: baselines import heavy).

    Accepts every batch and completes nothing, so a run through it measures
    the engine's arrival-delivery machinery and essentially nothing else.
    """
    global _NULL_SCHEME_CLS
    if _NULL_SCHEME_CLS is None:
        from repro.baselines.base import RoutingScheme, SchemeStepReport

        class _NullScheme(RoutingScheme):
            name = "null"

            def submit(self, request, now):  # pragma: no cover - batch path only
                raise NotImplementedError("null scheme is batch-only")

            def route_batch(self, requests):
                return []

            def step(self, now, dt):
                return SchemeStepReport()

        _NULL_SCHEME_CLS = _NullScheme
    return _NULL_SCHEME_CLS


class _EpochStepperState:
    """One funded topology plus a payment-heavy workload; each call replays it.

    The same state shape drives both variants; only the runner's ``engine``
    differs, so the measured difference is purely the per-payment event path
    versus the array-native drain cursor.
    """

    def __init__(self, nodes: int, duration: float, arrival_rate: float, engine: str) -> None:
        self.network = watts_strogatz_pcn(
            nodes,
            nearest_neighbors=4,
            rewire_probability=0.2,
            uniform_channel_size=200.0,
            candidate_fraction=0.2,
            seed=41,
        )
        self.workload = generate_workload(
            self.network,
            WorkloadConfig(duration=duration, arrival_rate=arrival_rate, seed=43),
        )
        self.runner = ExperimentRunner(
            self.network, self.workload, step_size=0.1, engine=engine
        )
        self._scheme_class = _null_scheme_class()

    def step(self) -> None:
        self.runner.run_single(self._scheme_class(), rng=np.random.default_rng(7))


def _epoch_stepper_specs(scale: str) -> List[BenchmarkSpec]:
    params = XL_SCALES[scale]
    nodes = int(params["nodes"])
    duration = float(params["duration"])
    arrival_rate = float(params["arrival_rate"])
    specs = []
    for engine in ("events", "epoch"):
        specs.append(
            BenchmarkSpec(
                name=f"xl-epoch-stepper/{scale}/{engine}",
                group="xl-epoch-stepper",
                scale=scale,
                variant=engine,
                setup=lambda engine=engine: _EpochStepperState(
                    nodes, duration, arrival_rate, engine
                ),
                fn=lambda state: state.step(),
                inner=1,
                meta={"nodes": nodes, "duration": duration, "arrival_rate": arrival_rate},
            )
        )
    return specs


def build_suite(scale: str) -> List[BenchmarkSpec]:
    """All benchmarks of one scale."""
    if scale in XL_SCALES:
        return _epoch_stepper_specs(scale)
    if scale not in SCALES:
        raise KeyError(
            f"unknown suite {scale!r}; choose from {sorted(SCALES) + sorted(XL_SCALES)}"
        )
    return [
        *_routing_step_specs(scale),
        _scenario_run_spec(scale),
        *_path_generation_specs(scale),
        *_fig8_compare_specs(scale),
        *_scheme_zoo_specs(scale),
        *_placement_specs(scale),
    ]


def build_suites(scales: List[str]) -> List[BenchmarkSpec]:
    """Benchmarks of several scales, in the given order."""
    specs: List[BenchmarkSpec] = []
    for scale in scales:
        specs.extend(build_suite(scale))
    return specs
