"""Performance-benchmark subsystem.

``python -m repro perf`` times the three hot layers of the reproduction --
the per-epoch routing step (prices + rates), a full scenario run, and the
placement solver -- at three scales, emits a machine-readable
``BENCH_<rev>.json`` report, and compares it against the committed baseline
in ``benchmarks/perf_baseline.json`` so that CI can fail on regressions.

Modules:

* :mod:`repro.perf.harness` -- timing loop, machine-speed calibration and
  the report schema.
* :mod:`repro.perf.suites` -- the benchmark definitions at the three scales.
* :mod:`repro.perf.baseline` -- baseline load/compare/update logic and the
  regression gate used by ``python -m repro perf --check``.
"""

from repro.perf.baseline import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_TOLERANCE,
    BaselineComparison,
    compare_report,
    filter_entries,
    load_baseline,
    update_baseline,
)
from repro.perf.harness import (
    BenchmarkRecord,
    BenchmarkReport,
    BenchmarkSpec,
    calibrate,
    git_revision,
    run_specs,
)
from repro.perf.suites import SCALES, build_suite

__all__ = [
    "BenchmarkRecord",
    "BenchmarkReport",
    "BenchmarkSpec",
    "BaselineComparison",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_TOLERANCE",
    "SCALES",
    "build_suite",
    "calibrate",
    "compare_report",
    "filter_entries",
    "git_revision",
    "load_baseline",
    "run_specs",
    "update_baseline",
]
