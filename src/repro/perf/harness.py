"""Micro-benchmark harness: timing loop, calibration, report schema.

Raw wall-clock times are not comparable across machines (a laptop and a CI
runner differ by 2-5x), so every report also carries a *calibration* time --
the duration of a fixed, deterministic reference workload measured on the
same machine right before the benchmarks.  Regression checks compare
*normalized* times (``best_seconds / calibration_seconds``), which cancels
most of the machine-speed difference while remaining sensitive to real
slowdowns in the measured code.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

#: Default repeats per benchmark; the best (minimum) time is recorded.
DEFAULT_REPEATS = 5


@dataclass
class BenchmarkSpec:
    """One benchmark: a setup building fresh state and a timed step.

    Attributes:
        name: Unique identifier, ``<group>/<scale>/<variant>``.
        group: Benchmark family (``routing-step``/``scenario-run``/...).
        scale: Suite scale (``small``/``medium``/``large``).
        variant: Backend or flavor (``numpy``/``python``/``-``).
        setup: Builds the benchmark state; run once, untimed.
        fn: One measured iteration, called with the setup's state.
        inner: Iterations per timed repeat (amortizes timer overhead for
            sub-millisecond steps).
        meta: Free-form descriptive values copied into the record.
    """

    name: str
    group: str
    scale: str
    variant: str
    setup: Callable[[], object]
    fn: Callable[[object], None]
    inner: int = 1
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class BenchmarkRecord:
    """Measured result of one benchmark.

    ``peak_mib`` is the tracemalloc peak of one untimed iteration (the
    warmup call), in MiB -- the memory dimension of the regression gate.
    Memory is measured outside the timed repeats, so the probe's overhead
    never touches the reported times.
    """

    name: str
    group: str
    scale: str
    variant: str
    repeats: int
    inner: int
    best_seconds: float
    mean_seconds: float
    normalized: float
    peak_mib: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "group": self.group,
            "scale": self.scale,
            "variant": self.variant,
            "repeats": self.repeats,
            "inner": self.inner,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "normalized": self.normalized,
            "peak_mib": self.peak_mib,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchmarkRecord":
        return cls(
            name=str(data["name"]),
            group=str(data["group"]),
            scale=str(data["scale"]),
            variant=str(data["variant"]),
            repeats=int(data["repeats"]),
            inner=int(data["inner"]),
            best_seconds=float(data["best_seconds"]),
            mean_seconds=float(data["mean_seconds"]),
            normalized=float(data["normalized"]),
            peak_mib=float(data.get("peak_mib", 0.0)),
            meta=dict(data.get("meta", {})),
        )


@dataclass
class BenchmarkReport:
    """A benchmark run: records plus environment and calibration context."""

    records: List[BenchmarkRecord]
    calibration_seconds: float
    revision: str
    environment: Dict[str, str] = field(default_factory=dict)

    def record(self, name: str) -> BenchmarkRecord:
        """Record by name (KeyError when absent)."""
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(f"no benchmark record named {name!r}")

    def speedups(self) -> Dict[str, float]:
        """Reference/fast best-time ratios per (group, scale) pair.

        Covers both gated variant pairs: the backend pair (``python`` over
        ``numpy``) and the engine pair (``events`` over ``epoch``).
        """
        by_key: Dict[tuple, Dict[str, float]] = {}
        for record in self.records:
            by_key.setdefault((record.group, record.scale), {})[record.variant] = (
                record.best_seconds
            )
        ratios = {}
        for (group, scale), variants in sorted(by_key.items()):
            for reference, fast in (("python", "numpy"), ("events", "epoch")):
                if reference in variants and fast in variants and variants[fast] > 0:
                    ratios[f"{group}/{scale}"] = variants[reference] / variants[fast]
        return ratios

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "revision": self.revision,
            "calibration_seconds": self.calibration_seconds,
            "environment": dict(self.environment),
            "speedups": self.speedups(),
            "records": [record.as_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchmarkReport":
        return cls(
            records=[BenchmarkRecord.from_dict(entry) for entry in data.get("records", [])],
            calibration_seconds=float(data["calibration_seconds"]),
            revision=str(data.get("revision", "unknown")),
            environment=dict(data.get("environment", {})),
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "BenchmarkReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ---------------------------------------------------------------------- #
# timing
# ---------------------------------------------------------------------- #
def _time_once(fn: Callable[[object], None], state: object, inner: int) -> float:
    started = time.perf_counter()
    for _ in range(inner):
        fn(state)
    return (time.perf_counter() - started) / inner


def _warmup_with_memory_probe(
    fn: Callable[[object], None], state: object, inner: int
) -> float:
    """Run the untimed warmup under tracemalloc; return its peak in MiB.

    Doubles as the warmup (caches, lazy imports) and the memory probe: the
    tracing overhead lives entirely outside the timed repeats.  When
    tracemalloc is already running (e.g. the whole process is being
    profiled), the probe stays out of its way and reports 0.
    """
    if tracemalloc.is_tracing():  # pragma: no cover - external profiling run
        _time_once(fn, state, inner)
        return 0.0
    tracemalloc.start()
    try:
        _time_once(fn, state, inner)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024.0 * 1024.0)


def calibrate(repeats: int = 5) -> float:
    """Best time of a fixed reference workload (machine-speed probe).

    Mixes interpreter arithmetic, NumPy kernels and object/dict churn in a
    deterministic loop so the normalization tracks every dimension a
    benchmark may be bound by -- allocation-heavy simulation code degrades
    differently under memory-bandwidth contention than pure arithmetic, and
    a probe missing that dimension would mis-normalize it.
    """

    def reference() -> float:
        total = 0.0
        for i in range(15_000):
            total += (i % 7) * 0.5
        values = np.arange(50_000, dtype=float)
        for _ in range(10):
            values = np.sqrt(values * values + 1.0)
        bucket = {}
        log = []
        for i in range(8_000):
            key = (i % 97, i % 31)
            bucket[key] = bucket.get(key, 0.0) + 1.0
            if i % 13 == 0:
                log.append((key, bucket[key]))
        return total + float(values[0]) + len(bucket) + len(log)

    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        reference()
        best = min(best, time.perf_counter() - started)
    return best


def run_spec(
    spec: BenchmarkSpec,
    calibration_seconds: float,
    repeats: int = DEFAULT_REPEATS,
) -> BenchmarkRecord:
    """Run one benchmark: fresh setup, one warmup, then timed repeats."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    state = spec.setup()
    peak_mib = _warmup_with_memory_probe(spec.fn, state, spec.inner)
    times = [_time_once(spec.fn, state, spec.inner) for _ in range(repeats)]
    return _build_record(spec, times, calibration_seconds, peak_mib=peak_mib)


def _build_record(
    spec: BenchmarkSpec,
    times: List[float],
    calibration_seconds: float,
    normalized: Optional[float] = None,
    peak_mib: float = 0.0,
) -> BenchmarkRecord:
    best = min(times)
    return BenchmarkRecord(
        name=spec.name,
        group=spec.group,
        scale=spec.scale,
        variant=spec.variant,
        repeats=len(times),
        inner=spec.inner,
        best_seconds=best,
        mean_seconds=sum(times) / len(times),
        normalized=normalized if normalized is not None else best / max(calibration_seconds, 1e-12),
        peak_mib=peak_mib,
        meta=dict(spec.meta),
    )


def run_specs(
    specs: Sequence[BenchmarkSpec],
    repeats: int = DEFAULT_REPEATS,
    on_record: Optional[Callable[[BenchmarkRecord], None]] = None,
    passes: int = 2,
) -> BenchmarkReport:
    """Run a list of benchmarks and assemble the report.

    The timed repeats are split into ``passes`` round-robin sweeps over the
    whole spec list, so a transient machine-load spike degrades one pass of
    every benchmark (recovered by the min over the other passes) instead of
    poisoning every repeat of whichever benchmark it happened to hit.

    Machine speed can also drift *within* a run (CPU-frequency scaling,
    cgroup quota throttling), so the calibration workload is re-measured
    immediately before each benchmark's repeats in each pass, and the
    benchmark's *normalized* time is the best over passes of
    ``pass best / adjacent calibration`` -- every ratio is taken against the
    machine state that actually produced the measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    passes = max(1, min(passes, repeats))
    states = []
    peaks: List[float] = []
    for spec in specs:
        state = spec.setup()
        peaks.append(_warmup_with_memory_probe(spec.fn, state, spec.inner))
        states.append(state)
    times: List[List[float]] = [[] for _ in specs]
    normalized: List[float] = [float("inf") for _ in specs]
    calibrations: List[float] = []
    share = [repeats // passes + (1 if p < repeats % passes else 0) for p in range(passes)]
    for pass_repeats in share:
        for index, spec in enumerate(specs):
            adjacent_calibration = max(calibrate(repeats=3), 1e-12)
            calibrations.append(adjacent_calibration)
            pass_times = [
                _time_once(spec.fn, states[index], spec.inner) for _ in range(pass_repeats)
            ]
            times[index].extend(pass_times)
            normalized[index] = min(normalized[index], min(pass_times) / adjacent_calibration)
    calibration_seconds = min(calibrations)
    records = []
    for index, (spec, spec_times) in enumerate(zip(specs, times)):
        record = _build_record(
            spec, spec_times, calibration_seconds, normalized[index], peak_mib=peaks[index]
        )
        records.append(record)
        if on_record is not None:
            on_record(record)
    return BenchmarkReport(
        records=records,
        calibration_seconds=calibration_seconds,
        revision=git_revision(),
        environment={
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "implementation": platform.python_implementation(),
            "argv": " ".join(sys.argv[1:]),
        },
    )


def profile_specs(
    specs: Sequence[BenchmarkSpec],
    top: int = 15,
    stream=None,
) -> None:
    """Run each benchmark once under cProfile and print its hottest calls.

    The diagnostic sibling of :func:`run_specs`: setup and one warmup call
    stay outside the profile (caches, lazy imports), then ``inner``
    iterations run under the profiler and the top ``top`` functions by
    cumulative time are printed.  No report or baseline is produced --
    profiling overhead would poison the numbers.
    """
    import cProfile
    import pstats

    out = stream if stream is not None else sys.stdout
    for spec in specs:
        state = spec.setup()
        _time_once(spec.fn, state, spec.inner)  # warmup: caches, lazy imports
        profile = cProfile.Profile()
        profile.enable()
        for _ in range(spec.inner):
            spec.fn(state)
        profile.disable()
        print(f"\n=== {spec.name} (inner={spec.inner}) ===", file=out)
        stats = pstats.Stats(profile, stream=out)
        stats.sort_stats("cumulative").print_stats(top)


def git_revision() -> str:
    """Short git revision of the working tree, or ``local`` outside a repo."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return output or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def default_report_name(revision: Optional[str] = None) -> str:
    """Conventional report filename: ``BENCH_<rev>.json``."""
    return f"BENCH_{revision or git_revision()}.json"
