"""Readers and renderers behind ``python -m repro report`` / ``repro trace``.

``report`` digests a results directory produced by the ``run``/``compare``/
``place-compare`` pipelines: the run manifest (``manifest.json``), the
per-scheme result tables, the failure-reason breakdown, and -- when runs
were traced -- a health summary aggregated from the per-shard NPZ telemetry
files.  ``trace`` filters and pretty-prints one JSONL trace file, including
a per-payment timeline view.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.tables import failure_breakdown_rows, format_table, scenario_table
from repro.obs.health import load_health
from repro.scenarios.jsonl import RESULT_SCHEMA_VERSION, load_result_rows

__all__ = [
    "MANIFEST_VERSION",
    "filter_trace_events",
    "load_manifest",
    "read_trace",
    "render_report",
    "render_timeline",
    "render_trace",
    "update_manifest",
]

MANIFEST_VERSION = 1


# ---------------------------------------------------------------------- #
# run manifest
# ---------------------------------------------------------------------- #
def _manifest_path(results_dir: str) -> str:
    return os.path.join(results_dir, "manifest.json")


def load_manifest(results_dir: str) -> Optional[Dict[str, object]]:
    """The directory's run manifest, or ``None`` when absent/unreadable."""
    path = _manifest_path(results_dir)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return None
    if data.get("manifest_version") != MANIFEST_VERSION:
        return None
    return data


def update_manifest(results_dir: str, entry: Dict[str, object]) -> str:
    """Merge one pipeline entry into ``<results_dir>/manifest.json``.

    Entries are keyed by ``(command, name)``: re-running a pipeline replaces
    its entry instead of appending duplicates, so the manifest always lists
    each results file once with its latest state.  The file is written via
    temp file plus atomic rename (the path-store convention), so a runner
    killed mid-write can never leave a torn manifest behind.
    """
    os.makedirs(results_dir, exist_ok=True)
    manifest = load_manifest(results_dir) or {"manifest_version": MANIFEST_VERSION, "entries": []}
    key = (entry.get("command"), entry.get("name"))
    entries = [
        existing
        for existing in manifest.get("entries", [])
        if (existing.get("command"), existing.get("name")) != key
    ]
    entries.append(entry)
    manifest["entries"] = entries
    path = _manifest_path(results_dir)
    handle, temp_path = tempfile.mkstemp(dir=results_dir, prefix="manifest.json.tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, sort_keys=True, default=str)
            stream.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


# ---------------------------------------------------------------------- #
# report rendering
# ---------------------------------------------------------------------- #
def _discover_entries(results_dir: str) -> List[Dict[str, object]]:
    """Fallback when no manifest exists: every JSONL file in the directory."""
    return [
        {"command": "unknown", "name": os.path.splitext(os.path.basename(path))[0], "results": path}
        for path in sorted(glob.glob(os.path.join(results_dir, "*.jsonl")))
    ]


def _resolve(results_dir: str, path: str) -> str:
    """Manifest paths may be absolute or relative to the results directory."""
    if os.path.isabs(path) or os.path.exists(path):
        return path
    return os.path.join(results_dir, path)


def _health_summary_rows(results_dir: str, rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Aggregate per-run health NPZ files into one row per scheme."""
    aggregates: Dict[str, Dict[str, List[float]]] = {}
    probes: Dict[str, int] = {}
    for row in rows:
        obs_info = row.get("obs")
        if not isinstance(obs_info, dict) or "health" not in obs_info:
            continue
        health_path = _resolve(results_dir, str(obs_info["health"]))
        if not os.path.exists(health_path):
            continue
        for scheme, metrics in load_health(health_path).items():
            times = metrics.get("time")
            if times is None or len(times) == 0:
                continue
            bucket = aggregates.setdefault(scheme, {})
            probes[scheme] = probes.get(scheme, 0) + len(times)

            def last(name: str) -> float:
                series = metrics.get(name)
                return float(series[-1]) if series is not None and len(series) else 0.0

            bucket.setdefault("gini_last", []).append(last("gini"))
            bucket.setdefault("imbalance_last", []).append(last("imbalance_mean"))
            locked = metrics.get("locked_total")
            bucket.setdefault("locked_max", []).append(
                float(locked.max()) if locked is not None and len(locked) else 0.0
            )
            drained = metrics.get("motifs_drained")
            bucket.setdefault("motifs_drained_max", []).append(
                float(drained.max()) if drained is not None and len(drained) else 0.0
            )
            hits, misses = last("cache_hits"), last("cache_misses")
            total = hits + misses
            bucket.setdefault("cache_hit_rate", []).append(hits / total if total else 0.0)
            batch_mean = metrics.get("batch_mean")
            bucket.setdefault("batch_mean", []).append(
                float(batch_mean[batch_mean > 0].mean())
                if batch_mean is not None and np.any(batch_mean > 0)
                else 0.0
            )
    return [
        {
            "scheme": scheme,
            "probes": probes[scheme],
            **{metric: round(float(np.mean(values)), 4) for metric, values in bucket.items()},
        }
        for scheme, bucket in aggregates.items()
    ]


def _shard_failure_section(
    failure_rows: Sequence[Dict[str, object]],
    ok_rows: Sequence[Dict[str, object]],
) -> List[str]:
    """The ``shard failures`` report lines, or an empty list when clean.

    A failure row whose run key later gained a success row was *recovered*
    (a retry or a resume re-ran it); only unrecovered keys get table rows,
    recovered ones collapse into a single count line.
    """
    if not failure_rows:
        return []
    recovered_keys = {str(row.get("run_key")) for row in ok_rows}
    unresolved: Dict[str, Dict[str, object]] = {}
    attempts: Dict[str, int] = {}
    recovered = 0
    for row in failure_rows:
        key = str(row.get("run_key"))
        attempts[key] = attempts.get(key, 0) + 1
        if key in recovered_keys:
            recovered += 1
            continue
        unresolved[key] = row
    lines = ["", "shard failures"]
    if recovered:
        lines.append(
            f"{recovered} failed attempt(s) later recovered by retry or resume"
        )
    if unresolved:
        table_rows = [
            {
                "run_key": key if len(key) <= 60 else key[:57] + "...",
                "failure": row.get("failure", ""),
                "error": row.get("error", ""),
                "attempts": attempts[key],
                "digest": row.get("traceback_digest", ""),
            }
            for key, row in sorted(unresolved.items())
        ]
        lines.append(format_table(table_rows))
    return lines


def render_report(results_dir: str) -> str:
    """The full ``repro report`` text for one results directory."""
    if not os.path.isdir(results_dir):
        raise ValueError(f"results directory {results_dir!r} does not exist")
    manifest = load_manifest(results_dir)
    entries = list(manifest.get("entries", [])) if manifest else _discover_entries(results_dir)
    if not entries:
        raise ValueError(f"no manifest.json or *.jsonl results under {results_dir!r}")

    sections: List[str] = []
    for entry in entries:
        name = str(entry.get("name", "results"))
        results_path = _resolve(results_dir, str(entry.get("results", f"{name}.jsonl")))
        schema_version = int(entry.get("schema_version", RESULT_SCHEMA_VERSION))
        all_rows = load_result_rows(results_path, schema_version)
        rows = [row for row in all_rows if row.get("status") != "failed"]
        failure_rows = [row for row in all_rows if row.get("status") == "failed"]
        title = f"{name} ({entry.get('command', 'unknown')}, {len(rows)} row(s))"
        block = [title, "=" * len(title)]
        failure_section = _shard_failure_section(failure_rows, rows)
        if failure_section:
            block.extend(failure_section)
        if not rows:
            block.append("(no rows at the current schema version)")
            sections.append("\n".join(block))
            continue
        if any("metrics" in row for row in rows):
            block.append("")
            block.append("scheme summary")
            block.append(scenario_table(rows))
            breakdown = failure_breakdown_rows(rows)
            if breakdown:
                block.append("")
                block.append("failure breakdown (payments per reason)")
                block.append(format_table(breakdown))
            health_rows = _health_summary_rows(results_dir, rows)
            if health_rows:
                block.append("")
                block.append("epoch health (mean over runs; last probe unless noted)")
                block.append(format_table(health_rows))
        else:
            # Placement-style rows: no per-scheme metrics, show the raw count.
            block.append(f"(non-scenario rows; see {results_path})")
        sections.append("\n".join(block))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------- #
# trace reading / rendering
# ---------------------------------------------------------------------- #
def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace file (corrupt lines are skipped, like results)."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "kind" in event:
                events.append(event)
    return events


def _channel_matches(event: Dict[str, object], endpoints: Sequence[str]) -> bool:
    channel = event.get("channel")
    if not isinstance(channel, (list, tuple)) or len(channel) != 2:
        return False
    names = {str(node) for node in channel}
    return names == {str(endpoint) for endpoint in endpoints}


def filter_trace_events(
    events: Sequence[Dict[str, object]],
    payment: Optional[int] = None,
    channel: Optional[Sequence[str]] = None,
    reason: Optional[str] = None,
    kind: Optional[str] = None,
    scheme: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Apply the ``repro trace`` filters (AND semantics)."""
    out: List[Dict[str, object]] = []
    for event in events:
        if payment is not None and event.get("pid") != payment:
            continue
        if channel is not None and not _channel_matches(event, channel):
            continue
        if reason is not None and str(event.get("reason", "")) != reason:
            continue
        if kind is not None and kind not in str(event.get("kind", "")):
            continue
        if scheme is not None and str(event.get("scheme", "")) != scheme:
            continue
        out.append(event)
    return out


_TABLE_FIELDS = ("t", "kind", "scheme", "pid", "reason")


def render_trace(events: Sequence[Dict[str, object]], limit: Optional[int] = None) -> str:
    """Render trace events as an aligned table (detail fields collapsed)."""
    shown = list(events if limit is None else events[:limit])
    rows = []
    for event in shown:
        detail = ", ".join(
            f"{key}={event[key]}" for key in sorted(event) if key not in _TABLE_FIELDS
        )
        rows.append(
            {
                "t": event.get("t", ""),
                "kind": event.get("kind", ""),
                "scheme": event.get("scheme", ""),
                "pid": event.get("pid", ""),
                "reason": event.get("reason", ""),
                "detail": detail,
            }
        )
    if not rows:
        return "(no matching events)"
    table = format_table(rows, columns=["t", "kind", "scheme", "pid", "reason", "detail"])
    if limit is not None and len(events) > limit:
        table += f"\n... {len(events) - limit} more event(s); raise --limit to see them"
    return table


def render_timeline(events: Sequence[Dict[str, object]], payment: int) -> str:
    """One payment's lifecycle as a relative-time timeline."""
    mine = sorted(
        (event for event in events if event.get("pid") == payment),
        key=lambda event: (float(event.get("t", 0.0)),),
    )
    if not mine:
        return f"(no events for payment {payment})"
    arrive = next((event for event in mine if event.get("kind") == "payment.arrive"), mine[0])
    origin = float(arrive.get("t", 0.0))
    header = (
        f"payment {payment}: {arrive.get('sender', '?')} -> {arrive.get('recipient', '?')}"
        f", value {arrive.get('value', '?')}"
        + (f", scheme {arrive['scheme']}" if "scheme" in arrive else "")
    )
    lines = [header]
    for event in mine:
        offset = float(event.get("t", 0.0)) - origin
        detail = ", ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("t", "kind", "pid", "scheme")
        )
        kind = str(event.get("kind", "")).replace("payment.", "")
        lines.append(f"  +{offset:8.4f}s {kind:<12} {detail}".rstrip())
    return "\n".join(lines)
