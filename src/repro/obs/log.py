"""A small structured logger for the runner and the CLI.

Two render modes share one call site:

* ``human`` (default) -- ``info`` messages print verbatim to stdout (so
  tables and grep-able progress lines look exactly like plain ``print``),
  ``warning``/``error`` go to stderr with a level prefix, and ``debug``
  only prints under ``--verbose``;
* ``jsonl`` -- every record is one JSON object on stdout
  (``{"level", "logger", "msg", ...fields}``), machine-readable for CI
  artifact collection.

Structured ``fields`` ride along in both modes: JSONL embeds them, human
mode ignores them (callers format the human string themselves).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Optional

__all__ = ["ObsLogger", "configure", "get_logger"]

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}

_state: Dict[str, object] = {"mode": "human", "level": INFO, "stream": None}


def configure(
    mode: Optional[str] = None,
    level: Optional[int] = None,
    verbose: Optional[bool] = None,
    quiet: Optional[bool] = None,
    stream: Optional[object] = None,
) -> None:
    """Set the process-wide log mode/threshold.

    ``verbose``/``quiet`` are conveniences for the CLI flags: verbose lowers
    the threshold to DEBUG, quiet raises it to WARNING (verbose wins when
    both are passed).  ``stream`` overrides the info/debug destination
    (e.g. stderr while ``perf --json`` owns stdout).
    """
    if mode is not None:
        if mode not in ("human", "jsonl"):
            raise ValueError(f"unknown log mode {mode!r}; expected 'human' or 'jsonl'")
        _state["mode"] = mode
    if level is not None:
        _state["level"] = level
    if quiet:
        _state["level"] = WARNING
    if verbose:
        _state["level"] = DEBUG
    _state["stream"] = stream


class ObsLogger:
    """Named logger writing through the module-wide configuration."""

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------ #
    def _emit(self, level: int, msg: str, fields: Dict[str, object]) -> None:
        if level < int(_state["level"]):  # type: ignore[call-overload]
            return
        if _state["mode"] == "jsonl":
            record: Dict[str, object] = {
                "level": _LEVEL_NAMES.get(level, str(level)),
                "logger": self.name,
                "msg": msg,
            }
            record.update(fields)
            stream = _state["stream"] or sys.stdout
            print(json.dumps(record, sort_keys=True, default=str), file=stream)
            return
        if level >= WARNING:
            print(f"{_LEVEL_NAMES.get(level, str(level))}: {msg}", file=sys.stderr)
        else:
            print(msg, file=_state["stream"] or sys.stdout)

    # ------------------------------------------------------------------ #
    def debug(self, msg: str, **fields: object) -> None:
        self._emit(DEBUG, msg, fields)

    def info(self, msg: str, **fields: object) -> None:
        self._emit(INFO, msg, fields)

    def warning(self, msg: str, **fields: object) -> None:
        self._emit(WARNING, msg, fields)

    def error(self, msg: str, **fields: object) -> None:
        self._emit(ERROR, msg, fields)


_loggers: Dict[str, ObsLogger] = {}


def get_logger(name: str) -> ObsLogger:
    """The (cached) logger of the given name."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = ObsLogger(name)
    return logger
