"""Run-wide observability: tracing, health telemetry, structured logging.

Instrumentation sites import the core module directly and read the global
recorder each time (``from repro.obs import core as obs`` then
``obs.RECORDER``); this package re-exports the management API everyone
else needs -- building recorders, installing them, and reading artifacts
back.
"""

from repro.obs.core import (
    DEFAULT_SAMPLE_RATE,
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    NullRecorder,
    RunRecorder,
    get_recorder,
    sample_hash,
    set_recorder,
    use_recorder,
)
from repro.obs.health import HEALTH_SCHEMA_VERSION, HealthRecorder, load_health
from repro.obs.log import ObsLogger, configure, get_logger

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "HEALTH_SCHEMA_VERSION",
    "HealthRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsLogger",
    "RunRecorder",
    "TRACE_SCHEMA_VERSION",
    "configure",
    "get_logger",
    "get_recorder",
    "load_health",
    "sample_hash",
    "set_recorder",
    "use_recorder",
]
