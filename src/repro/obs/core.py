"""Near-zero-overhead instrumentation core.

The module holds one process-global recorder, :data:`RECORDER`.  By default
it is the :class:`NullRecorder` singleton, whose ``enabled`` attribute is
``False`` and whose every method is a no-op -- hot paths guard their
instrumentation with::

    rec = obs.RECORDER
    if rec.enabled:
        rec.payment_event(payment, "lock_fail", now, channel=key)

so the disabled-mode cost is a module-attribute read plus one attribute
check, independent of how much a :class:`RunRecorder` would record.

A :class:`RunRecorder` combines the three consumers this layer feeds:

* **counters/timers** -- free-form named accumulators,
* **payment-lifecycle tracing** -- sampled structured spans written as one
  JSON object per line (see :mod:`repro.obs.report` for the reader),
* **epoch health telemetry** -- per-epoch network probes recorded as NPZ
  time series (:mod:`repro.obs.health`).

Sampling is *seeded and content-addressed*: whether a payment is traced is a
pure hash of ``(trace seed, sender, recipient, value, created_at)``, so the
same spec and seed produce the identical trace whatever the process, worker
count or interleaving -- and the decision never touches any simulation RNG,
which is what keeps results bit-identical with observability on or off.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import IO, Dict, Iterator, List, Optional

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "RunRecorder",
    "TRACE_SCHEMA_VERSION",
    "get_recorder",
    "sample_hash",
    "set_recorder",
    "use_recorder",
]

#: Stamped on every trace header; bumped when the event schema changes.
TRACE_SCHEMA_VERSION = 1

#: Default fraction of payments whose lifecycle is traced.
DEFAULT_SAMPLE_RATE = 0.05


def sample_hash(seed: int, sender: object, recipient: object, value: float, created_at: float) -> float:
    """Deterministic uniform-in-[0, 1) draw for one payment's sampling decision.

    Content-addressed (no process-global counters, no simulation RNG): the
    same payment identity under the same trace seed hashes to the same draw
    on every platform and in every process.
    """
    material = repr((int(seed), sender, recipient, round(float(value), 9), round(float(created_at), 9)))
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Hot paths only ever touch :attr:`enabled`; the method stubs exist so
    cold paths may record unconditionally without a guard.
    """

    enabled = False
    health = None

    def incr(self, name: str, amount: float = 1.0) -> None:
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield

    def set_scheme(self, name: Optional[str]) -> None:
        pass

    def trace_event(self, kind: str, t: float, **fields: object) -> None:
        pass

    def payment_begin(self, payment: object, t: Optional[float] = None) -> bool:
        return False

    def payment_event(self, payment: object, kind: str, t: float, **fields: object) -> None:
        pass

    def payment_end(self, payment: object, kind: str, t: float, **fields: object) -> None:
        pass

    def note_batch(self, scheme: str, size: int) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared no-op instance; ``RECORDER is NULL_RECORDER`` means "off".
NULL_RECORDER = NullRecorder()

#: The process-global recorder consulted by every instrumentation site.
RECORDER: NullRecorder = NULL_RECORDER


def get_recorder() -> NullRecorder:
    """The currently installed recorder (the null recorder when disabled)."""
    return RECORDER


def set_recorder(recorder: Optional[NullRecorder]) -> NullRecorder:
    """Install ``recorder`` globally; ``None`` restores the null recorder."""
    global RECORDER
    RECORDER = NULL_RECORDER if recorder is None else recorder
    return RECORDER


@contextmanager
def use_recorder(recorder: Optional[NullRecorder]) -> Iterator[NullRecorder]:
    """Temporarily install ``recorder``, restoring the previous one on exit."""
    previous = RECORDER
    installed = set_recorder(recorder)
    try:
        yield installed
    finally:
        set_recorder(previous)


class RunRecorder(NullRecorder):
    """A live recorder: counters, sampled payment traces, health telemetry.

    Args:
        trace_path: JSONL trace destination; ``None`` keeps events in memory
            (:attr:`events`), which is what the tests read.
        sample_rate: Fraction of payments whose lifecycle spans are emitted.
        seed: Trace-sampling seed (independent of every simulation seed).
        health: Optional :class:`repro.obs.health.HealthRecorder` fed by the
            experiment runner's per-epoch probes.
    """

    enabled = True

    def __init__(
        self,
        trace_path: Optional[str] = None,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
        health: Optional[object] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.trace_path = trace_path
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        self.health = health
        self.counters: Dict[str, float] = {}
        self.events: List[Dict[str, object]] = []
        self.events_written = 0
        self.sampled_payments = 0
        self._scheme: Optional[str] = None
        #: payment_id -> stable per-trace payment index (sampled payments only).
        self._sampled: Dict[int, int] = {}
        #: payment ids hash-rejected, kept so repeat begins stay cheap no-ops.
        self._rejected: set = set()
        self._next_pid = 0
        self._handle: Optional[IO[str]] = None
        if trace_path is not None:
            self._handle = open(trace_path, "w", encoding="utf-8")
        self.trace_event(
            "trace.header",
            0.0,
            schema_version=TRACE_SCHEMA_VERSION,
            sample_rate=self.sample_rate,
            trace_seed=self.seed,
        )

    # ------------------------------------------------------------------ #
    # counters / timers
    # ------------------------------------------------------------------ #
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds into counter ``time.<name>``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.incr(f"time.{name}", time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # tracing
    # ------------------------------------------------------------------ #
    def set_scheme(self, name: Optional[str]) -> None:
        """Stamp subsequent events with the scheme currently running."""
        self._scheme = name

    def trace_event(self, kind: str, t: float, **fields: object) -> None:
        """Emit one structured event (run/dynamics level, never sampled out)."""
        event: Dict[str, object] = {"kind": kind, "t": round(float(t), 9)}
        if self._scheme is not None:
            event["scheme"] = self._scheme
        event.update(fields)
        self._write(event)

    def payment_begin(self, payment: object, t: Optional[float] = None) -> bool:
        """Decide (idempotently) whether ``payment`` is traced; emit its arrival.

        Returns whether the payment is sampled.  The decision is a pure hash
        of the payment's identity under the trace seed, so it is identical
        across runs, processes and backends.
        """
        payment_id = payment.payment_id  # type: ignore[attr-defined]
        if payment_id in self._sampled:
            return True
        if payment_id in self._rejected:
            return False
        draw = sample_hash(
            self.seed,
            payment.sender,  # type: ignore[attr-defined]
            payment.recipient,  # type: ignore[attr-defined]
            payment.value,  # type: ignore[attr-defined]
            payment.created_at,  # type: ignore[attr-defined]
        )
        if draw >= self.sample_rate:
            self._rejected.add(payment_id)
            return False
        pid = self._next_pid
        self._next_pid = pid + 1
        self._sampled[payment_id] = pid
        self.sampled_payments += 1
        created_at = payment.created_at  # type: ignore[attr-defined]
        self.trace_event(
            "payment.arrive",
            created_at if t is None else t,
            pid=pid,
            sender=payment.sender,  # type: ignore[attr-defined]
            recipient=payment.recipient,  # type: ignore[attr-defined]
            value=round(float(payment.value), 9),  # type: ignore[attr-defined]
            deadline=round(float(payment.deadline), 9),  # type: ignore[attr-defined]
        )
        return True

    def payment_event(self, payment: object, kind: str, t: float, **fields: object) -> None:
        """Emit a lifecycle span for a sampled payment (no-op otherwise).

        ``payment`` may be a payment object or a raw payment id (per-hop
        sites only hold the unit's ``payment_id``).
        """
        payment_id = getattr(payment, "payment_id", payment)
        pid = self._sampled.get(payment_id)  # type: ignore[arg-type]
        if pid is None:
            return
        self.trace_event(f"payment.{kind}", t, pid=pid, **fields)

    def payment_end(self, payment: object, kind: str, t: float, **fields: object) -> None:
        """Emit the terminal span (settle/fail) and retire the payment.

        Retiring keeps the sampled map bounded over million-payment runs.
        """
        payment_id = getattr(payment, "payment_id", payment)
        pid = self._sampled.pop(payment_id, None)  # type: ignore[arg-type]
        self._rejected.discard(payment_id)
        if pid is None:
            return
        self.trace_event(f"payment.{kind}", t, pid=pid, **fields)

    def note_batch(self, scheme: str, size: int) -> None:
        """Record one arrival-batch drain (size feeds the health telemetry)."""
        self.incr("arrivals.batches")
        self.incr("arrivals.requests", size)
        if self.health is not None:
            self.health.note_batch(scheme, size)

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    def _write(self, event: Dict[str, object]) -> None:
        self.events_written += 1
        if self._handle is not None:
            self._handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        else:
            self.events.append(event)

    def summary(self) -> Dict[str, object]:
        """JSON-safe digest referenced from result rows."""
        digest: Dict[str, object] = {
            "trace_events": self.events_written,
            "sampled_payments": self.sampled_payments,
            "sample_rate": self.sample_rate,
            "trace_seed": self.seed,
        }
        if self.trace_path is not None:
            digest["trace"] = self.trace_path
        if self.health is not None and getattr(self.health, "path", None) is not None:
            digest["health"] = self.health.path
        if self.counters:
            digest["counters"] = {key: round(value, 6) for key, value in sorted(self.counters.items())}
        return digest

    def close(self) -> None:
        """Flush the trace file and save the health NPZ (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            # Late events (none are expected) fall back to the in-memory list.
        if self.health is not None:
            self.health.save()
