"""Per-epoch network health telemetry recorded as NPZ time series.

The experiment runner probes the live network on a fixed interval while a
scheme runs (see ``ExperimentRunner.run_single``).  Each probe appends one
sample per metric to the scheme's series; :meth:`HealthRecorder.save` writes
every series into one ``.npz`` whose keys are ``"<scheme>|<metric>"``.

Probes are strictly read-only with respect to routing decisions: they run
after the scheme's array mirrors are flushed, they mutate nothing, and the
deadlock-motif search uses its own derived RNG -- so enabling telemetry
leaves every scheme's results bit-identical (asserted by the no-op
equivalence tests).

Metrics per probe:

* ``time`` -- simulation time of the probe,
* ``gini`` -- Gini coefficient over all per-side channel balances (the
  run-wide balance-skew summary),
* ``imbalance_mean`` -- mean per-channel imbalance fraction
  ``|b_a - b_b| / capacity``,
* ``locked_total`` -- funds currently locked in flight across all channels,
* ``saturation_hist`` -- histogram of per-channel imbalance over
  :data:`SATURATION_BINS` (a channel at 1.0 is fully one-sided -- the
  Figure-1 deadlock precondition),
* ``motifs_found`` / ``motifs_drained`` -- deadlock motifs present in the
  topology (via the workload generator's motif finder) and how many of them
  currently have their relay-side balance below
  :data:`DRAINED_FRACTION` of the channel capacity,
* ``cache_hits`` / ``cache_misses`` -- cumulative path-catalog (or
  hop-matrix) store counters, when the scheme carries a store,
* ``batch_count`` / ``batch_mean`` -- arrival batches drained since the
  previous probe and their mean size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "DRAINED_FRACTION",
    "HEALTH_SCHEMA_VERSION",
    "SATURATION_BINS",
    "HealthRecorder",
    "gini",
    "load_health",
]

#: Stamped into every NPZ under the ``__schema_version__`` key.
HEALTH_SCHEMA_VERSION = 1

#: Imbalance-fraction bin edges of the channel-saturation histogram.
SATURATION_BINS = np.linspace(0.0, 1.0, 11)

#: A motif relay side below this fraction of channel capacity counts as drained.
DRAINED_FRACTION = 0.1


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, -> 1 = skewed)."""
    x = np.sort(np.asarray(values, dtype=float))
    n = x.size
    total = float(x.sum())
    if n == 0 or total <= 0.0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=float)
    return float((2.0 * np.dot(ranks, x) / (n * total)) - (n + 1.0) / n)


class HealthRecorder:
    """Accumulates per-scheme health time series and saves them as one NPZ."""

    def __init__(
        self,
        path: Optional[str] = None,
        interval: float = 1.0,
        seed: int = 0,
        max_motifs: int = 10,
    ) -> None:
        if interval <= 0:
            raise ValueError("health interval must be positive")
        self.path = path
        self.interval = float(interval)
        self.seed = int(seed)
        self.max_motifs = int(max_motifs)
        #: scheme -> metric -> list of per-probe samples.
        self._series: Dict[str, Dict[str, List[object]]] = {}
        #: scheme -> batch sizes drained since that scheme's last probe.
        self._batches: Dict[str, List[int]] = {}
        self._probe_index = 0

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def note_batch(self, scheme: str, size: int) -> None:
        """One arrival batch was drained for ``scheme``."""
        self._batches.setdefault(scheme, []).append(int(size))

    def observe(self, scheme: str, network: object, t: float, cache_stats: Optional[Dict[str, int]] = None) -> None:
        """Take one probe of the live network for ``scheme`` at time ``t``.

        The caller must have flushed the scheme's fast-path state so channel
        objects are authoritative.  ``cache_stats`` is the scheme's path
        store hit/miss dict when it has one.
        """
        channels = list(network.channels())  # type: ignore[attr-defined]
        sides: List[float] = []
        imbalances: List[float] = []
        locked = 0.0
        for channel in channels:
            balance_a, balance_b = channel.balance_pair()
            sides.append(balance_a)
            sides.append(balance_b)
            imbalances.append(channel.imbalance())
            locked += channel.locked_total()
        imbalance_array = np.asarray(imbalances, dtype=float)
        hist, _ = np.histogram(imbalance_array, bins=SATURATION_BINS)

        found, drained = self._probe_motifs(network)

        series = self._series.setdefault(scheme, {})

        def push(metric: str, value: object) -> None:
            series.setdefault(metric, []).append(value)

        push("time", float(t))
        push("gini", gini(np.asarray(sides, dtype=float)))
        push("imbalance_mean", float(imbalance_array.mean()) if imbalances else 0.0)
        push("locked_total", float(locked))
        push("saturation_hist", hist.astype(np.int64))
        push("motifs_found", int(found))
        push("motifs_drained", int(drained))
        stats = cache_stats or {}
        push("cache_hits", int(stats.get("hits", 0)))
        push("cache_misses", int(stats.get("misses", 0)))
        batches = self._batches.pop(scheme, [])
        push("batch_count", len(batches))
        push("batch_mean", float(np.mean(batches)) if batches else 0.0)
        self._probe_index += 1

    def _probe_motifs(self, network: object) -> Tuple[int, int]:
        """Count deadlock motifs, and how many are currently drained.

        Uses a derived RNG per probe (never a simulation generator), so the
        probe cannot perturb any scheme's random stream.
        """
        # Imported lazily: obs must stay importable below the simulator layer.
        from repro.simulator.workload import _find_deadlock_motifs

        rng = np.random.default_rng((self.seed * 1_000_003 + self._probe_index) & 0x7FFFFFFF)
        motifs = _find_deadlock_motifs(network, rng, max_motifs=self.max_motifs)
        drained = 0
        for _a, relay, b in motifs:
            channel = network.channel(relay, b)  # type: ignore[attr-defined]
            capacity = channel.capacity
            if capacity > 0 and channel.balance(relay) < DRAINED_FRACTION * capacity:
                drained += 1
        return len(motifs), drained

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    def arrays(self) -> Dict[str, np.ndarray]:
        """Every series as ``"<scheme>|<metric>"`` -> stacked array."""
        out: Dict[str, np.ndarray] = {}
        for scheme, metrics in self._series.items():
            for metric, samples in metrics.items():
                if metric == "saturation_hist":
                    out[f"{scheme}|{metric}"] = np.stack(samples) if samples else np.zeros((0, len(SATURATION_BINS) - 1), dtype=np.int64)
                else:
                    out[f"{scheme}|{metric}"] = np.asarray(samples)
        return out

    def save(self, path: Optional[str] = None) -> Optional[str]:
        """Write the NPZ (to ``path`` or the constructor's); ``None`` skips."""
        destination = path or self.path
        if destination is None:
            return None
        payload = self.arrays()
        payload["__schema_version__"] = np.asarray(HEALTH_SCHEMA_VERSION)
        np.savez(destination, **payload)
        return destination

    def schemes(self) -> List[str]:
        """Scheme names with at least one probe, in first-probe order."""
        return list(self._series)


def load_health(path: str) -> Dict[str, Dict[str, np.ndarray]]:
    """Load a health NPZ back into ``scheme -> metric -> array`` form."""
    out: Dict[str, Dict[str, np.ndarray]] = {}
    with np.load(path) as data:
        for key in data.files:
            if key == "__schema_version__":
                continue
            scheme, _, metric = key.partition("|")
            out.setdefault(scheme, {})[metric] = data[key]
    return out
