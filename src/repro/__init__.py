"""Splicer reproduction: optimal PCH placement and deadlock-free routing.

This package reproduces the system described in "Optimal Hub Placement and
Deadlock-Free Routing for Payment Channel Network Scalability" (ICDCS 2023).
It contains:

* :mod:`repro.topology` -- payment channel network graph substrate.
* :mod:`repro.placement` -- the PCH placement optimization (MILP for
  small-scale networks, supermodular double-greedy for large-scale).
* :mod:`repro.routing` -- the rate-based, deadlock-free routing protocol.
* :mod:`repro.core` -- the Splicer system tying placement and routing together.
* :mod:`repro.baselines` -- Spider, Flash, landmark routing, A2L and
  shortest-path comparison schemes.
* :mod:`repro.simulator` -- a discrete-event PCN simulator used by the
  evaluation harness.
* :mod:`repro.scenarios` -- declarative scenarios, mid-run network dynamics
  and the parallel sweep runner behind the ``python -m repro`` CLI.
* :mod:`repro.crypto` -- simulated key management, HTLC and contract layer.
* :mod:`repro.analysis` -- experiment sweeps, metrics tables and statistics.
"""

from repro.core.config import SplicerConfig
from repro.core.splicer import SplicerSystem
from repro.placement.problem import PlacementPlan, PlacementProblem
from repro.placement.solver import PlacementSolver, solve_placement
from repro.routing.router import RateRouter
from repro.scenarios.registry import get_scenario, list_scenarios, register_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec
from repro.simulator.experiment import ExperimentResult, ExperimentRunner
from repro.topology.network import PCNetwork

__version__ = "1.1.0"

__all__ = [
    "SplicerConfig",
    "SplicerSystem",
    "PlacementPlan",
    "PlacementProblem",
    "PlacementSolver",
    "solve_placement",
    "RateRouter",
    "ScenarioRunner",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "ExperimentResult",
    "ExperimentRunner",
    "PCNetwork",
    "__version__",
]
