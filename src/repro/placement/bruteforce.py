"""Exhaustive placement optimum, used as ground truth in tests.

The placement objective is a set function over subsets of the candidate set
(the assignment is determined by Lemma 1), so the true optimum of a small
instance can be found by enumerating all non-empty subsets.  This is
exponential and only intended for instances with at most ~16 candidates.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.placement.assignment import plan_for_placement, placement_cost
from repro.placement.problem import PlacementPlan, PlacementProblem

#: Refuse to enumerate more candidates than this (2^16 subsets).
MAX_BRUTE_FORCE_CANDIDATES = 16


def brute_force_placement(
    problem: PlacementProblem,
    max_hubs: Optional[int] = None,
) -> PlacementPlan:
    """Enumerate every placement and return the cheapest plan.

    Args:
        problem: The placement instance.
        max_hubs: Optional cap on the number of placed hubs (enumerate only
            subsets up to this size).

    Raises:
        ValueError: If the instance has more candidates than
            :data:`MAX_BRUTE_FORCE_CANDIDATES`.
    """
    candidates = list(problem.candidates)
    if len(candidates) > MAX_BRUTE_FORCE_CANDIDATES:
        raise ValueError(
            f"brute force limited to {MAX_BRUTE_FORCE_CANDIDATES} candidates, "
            f"got {len(candidates)}"
        )
    limit = len(candidates) if max_hubs is None else min(max_hubs, len(candidates))
    if limit < 1:
        raise ValueError("max_hubs must allow at least one hub")

    best_cost = float("inf")
    best_subset = None
    for size in range(1, limit + 1):
        for subset in combinations(candidates, size):
            # Scalar reference arithmetic: the enumerated optimum (and its
            # tie-breaks) must not depend on the problem's backend.
            cost = placement_cost(problem, subset, backend="python")
            if cost < best_cost:
                best_cost = cost
                best_subset = subset
    if best_subset is None:  # pragma: no cover - only when there are no candidates
        raise ValueError("no feasible placement found")
    return plan_for_placement(problem, best_subset, method="brute-force")
