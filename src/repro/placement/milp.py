"""MILP formulation of the placement problem (small-scale optimal solution).

The paper linearizes the nonlinear balance-cost objective by introducing the
auxiliary binary variables ``theta[n][l] = x_n * x_l`` and
``phi[n][l][m] = theta[n][l] * y_mn`` (equations 6-10) and solving the
resulting mixed-integer linear program with a commercial solver.  Since no
commercial solver is available offline, this module provides:

* :func:`linearize_placement` -- builds the exact MILP of the paper
  (objective vector, inequality and equality constraint matrices, variable
  index maps),
* :class:`BranchAndBoundSolver` -- an in-house branch-and-bound solver over
  the placement variables ``x``, using the scipy/HiGHS LP relaxation of the
  linearized program as the lower bound and Lemma-1 completion to produce
  incumbents,
* :func:`solve_placement_milp` -- the public entry point, which also uses
  ``scipy.optimize.milp`` (HiGHS branch-and-cut) when it is available as a
  faster backend and falls back to the in-house solver otherwise.

The in-house solver is validated against brute force in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.placement.assignment import plan_for_placement, placement_cost
from repro.placement.problem import PlacementPlan, PlacementProblem

NodeId = Hashable
_INT_TOL = 1e-6


@dataclass
class MILPModel:
    """The linearized placement MILP in standard ``min c.x`` form.

    Attributes:
        objective: Objective coefficient vector ``c``.
        a_ub: Inequality constraint matrix (``A_ub @ v <= b_ub``), CSR sparse.
        b_ub: Inequality right-hand side.
        a_eq: Equality constraint matrix (``A_eq @ v == b_eq``), CSR sparse.
        b_eq: Equality right-hand side.
        index: Map from symbolic variable name (e.g. ``("x", n)``,
            ``("y", m, n)``, ``("theta", n, l)``, ``("phi", n, l, m)``) to its
            column index.
        x_indices: Column indices of the placement variables in candidate order.
        problem: The originating placement problem.
    """

    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    index: Dict[Tuple, int]
    x_indices: List[int]
    problem: PlacementProblem

    @property
    def variable_count(self) -> int:
        """Total number of decision variables."""
        return int(self.objective.size)

    @property
    def constraint_count(self) -> int:
        """Total number of linear constraints."""
        return int(self.a_ub.shape[0] + self.a_eq.shape[0])

    def decode_placement(self, solution: np.ndarray) -> List[NodeId]:
        """Candidates whose ``x_n`` is (numerically) one in a solution vector."""
        hubs = []
        for candidate, column in zip(self.problem.candidates, self.x_indices):
            if solution[column] > 0.5:
                hubs.append(candidate)
        return hubs


def linearize_placement(problem: PlacementProblem) -> MILPModel:
    """Build the paper's linearized MILP (equations 6-10) for a problem instance."""
    clients = list(problem.clients)
    candidates = list(problem.candidates)
    omega = problem.omega
    costs = problem.costs

    index: Dict[Tuple, int] = {}

    def add_var(key: Tuple) -> int:
        index[key] = len(index)
        return index[key]

    for n in candidates:
        add_var(("x", n))
    for m in clients:
        for n in candidates:
            add_var(("y", m, n))
    for n in candidates:
        for l in candidates:
            add_var(("theta", n, l))
    for n in candidates:
        for l in candidates:
            for m in clients:
                add_var(("phi", n, l, m))

    var_count = len(index)
    objective = np.zeros(var_count)
    # Management cost: sum_m sum_n zeta[m][n] * y_mn.
    for m in clients:
        for n in candidates:
            objective[index[("y", m, n)]] += costs.zeta[m][n]
    # Synchronization cost: omega * sum_nl (sum_m delta[n][l] * phi_nlm + eps[n][l] * theta_nl).
    for n in candidates:
        for l in candidates:
            objective[index[("theta", n, l)]] += omega * costs.epsilon[n][l]
            for m in clients:
                objective[index[("phi", n, l, m)]] += omega * costs.delta[n][l]

    ub_rows: List[Tuple[List[int], List[float], float]] = []
    eq_rows: List[Tuple[List[int], List[float], float]] = []

    # Each client is assigned to exactly one candidate (constraint on y).
    for m in clients:
        cols = [index[("y", m, n)] for n in candidates]
        eq_rows.append((cols, [1.0] * len(cols), 1.0))

    # Assignment only to placed candidates: y_mn - x_n <= 0.
    for m in clients:
        for n in candidates:
            ub_rows.append(([index[("y", m, n)], index[("x", n)]], [1.0, -1.0], 0.0))

    # Linearization of theta = x_n * x_l (equation 8).
    for n in candidates:
        for l in candidates:
            t = index[("theta", n, l)]
            xn = index[("x", n)]
            xl = index[("x", l)]
            ub_rows.append(([t, xn], [1.0, -1.0], 0.0))
            ub_rows.append(([t, xl], [1.0, -1.0], 0.0))
            ub_rows.append(([xn, xl, t], [1.0, 1.0, -1.0], 1.0))

    # Linearization of phi = theta * y (equation 9).
    for n in candidates:
        for l in candidates:
            t = index[("theta", n, l)]
            for m in clients:
                p = index[("phi", n, l, m)]
                y = index[("y", m, n)]
                ub_rows.append(([p, t], [1.0, -1.0], 0.0))
                ub_rows.append(([p, y], [1.0, -1.0], 0.0))
                ub_rows.append(([t, y, p], [1.0, 1.0, -1.0], 1.0))

    # At least one smooth node must be placed.
    ub_rows.append(([index[("x", n)] for n in candidates], [-1.0] * len(candidates), -1.0))

    a_ub, b_ub = _rows_to_sparse(ub_rows, var_count)
    a_eq, b_eq = _rows_to_sparse(eq_rows, var_count)
    x_indices = [index[("x", n)] for n in candidates]
    return MILPModel(objective, a_ub, b_ub, a_eq, b_eq, index, x_indices, problem)


def _rows_to_sparse(
    rows: Sequence[Tuple[List[int], List[float], float]],
    var_count: int,
) -> Tuple[sparse.csr_matrix, np.ndarray]:
    """Assemble (cols, coefficients, rhs) row triples into a CSR matrix."""
    data: List[float] = []
    row_idx: List[int] = []
    col_idx: List[int] = []
    rhs: List[float] = []
    for row_number, (cols, coefficients, bound) in enumerate(rows):
        rhs.append(bound)
        for col, coefficient in zip(cols, coefficients):
            row_idx.append(row_number)
            col_idx.append(col)
            data.append(coefficient)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(rows), var_count), dtype=float
    )
    return matrix, np.asarray(rhs, dtype=float)


@dataclass
class MILPResult:
    """Outcome of a MILP solve: the plan plus solver diagnostics."""

    plan: PlacementPlan
    objective_value: float
    nodes_explored: int
    backend: str
    optimal: bool = True


class BranchAndBoundSolver:
    """Branch-and-bound over the placement variables with LP-relaxation bounds.

    The solver branches only on the ``x`` (placement) variables: once every
    ``x`` is fixed, the optimal assignment is determined by Lemma 1, so the
    incumbent at each integral node is computed combinatorially rather than
    trusting a fractional LP assignment.  Lower bounds come from the HiGHS LP
    relaxation of the full linearized program with the branching decisions
    imposed as variable bounds.
    """

    def __init__(
        self,
        model: MILPModel,
        node_limit: int = 2000,
        gap_tolerance: float = 1e-6,
    ) -> None:
        self.model = model
        self.node_limit = node_limit
        self.gap_tolerance = gap_tolerance
        self.nodes_explored = 0

    def solve(self, initial_hubs: Optional[Sequence[NodeId]] = None) -> MILPResult:
        """Run branch and bound, optionally warm-started with an initial placement."""
        problem = self.model.problem
        candidates = list(problem.candidates)

        best_hubs: Optional[Tuple[NodeId, ...]] = None
        best_cost = float("inf")
        if initial_hubs:
            warm = tuple(h for h in candidates if h in set(initial_hubs))
            if warm:
                best_hubs = warm
                # Incumbent scores use the scalar reference arithmetic so the
                # branch-and-bound search is backend-independent.
                best_cost = placement_cost(problem, warm, backend="python")

        # Depth-first stack of partial fixings: candidate -> 0/1.
        stack: List[Dict[NodeId, int]] = [{}]
        proven_optimal = True
        while stack:
            if self.nodes_explored >= self.node_limit:
                proven_optimal = False
                break
            fixing = stack.pop()
            self.nodes_explored += 1

            relaxation = self._solve_relaxation(fixing)
            if relaxation is None:
                continue
            bound, x_values = relaxation
            if bound >= best_cost - self.gap_tolerance:
                continue

            fractional = self._most_fractional(candidates, fixing, x_values)
            if fractional is None:
                # All x integral in the relaxation: evaluate via Lemma 1.
                hubs = tuple(
                    c
                    for c, value in zip(candidates, x_values)
                    if fixing.get(c, 1 if value > 0.5 else 0) == 1
                )
                if not hubs:
                    continue
                cost = placement_cost(problem, hubs, backend="python")
                if cost < best_cost:
                    best_cost = cost
                    best_hubs = hubs
                continue

            for value in (1, 0):
                child = dict(fixing)
                child[fractional] = value
                stack.append(child)

        if best_hubs is None:
            # Degenerate fallback: place every candidate.
            best_hubs = tuple(candidates)
            best_cost = placement_cost(problem, best_hubs, backend="python")
            proven_optimal = False

        plan = plan_for_placement(problem, best_hubs, method="milp-branch-and-bound")
        return MILPResult(
            plan=plan,
            objective_value=best_cost,
            nodes_explored=self.nodes_explored,
            backend="in-house-bnb",
            optimal=proven_optimal,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _solve_relaxation(
        self, fixing: Dict[NodeId, int]
    ) -> Optional[Tuple[float, np.ndarray]]:
        """LP relaxation with branching decisions imposed; None if infeasible."""
        model = self.model
        lower = np.zeros(model.variable_count)
        upper = np.ones(model.variable_count)
        for candidate, column in zip(model.problem.candidates, model.x_indices):
            if candidate in fixing:
                lower[column] = upper[column] = float(fixing[candidate])
        result = optimize.linprog(
            model.objective,
            A_ub=model.a_ub,
            b_ub=model.b_ub,
            A_eq=model.a_eq,
            b_eq=model.b_eq,
            bounds=np.column_stack([lower, upper]),
            method="highs",
        )
        if not result.success:
            return None
        x_values = np.array([result.x[column] for column in model.x_indices])
        return float(result.fun), x_values

    @staticmethod
    def _most_fractional(
        candidates: Sequence[NodeId],
        fixing: Dict[NodeId, int],
        x_values: np.ndarray,
    ) -> Optional[NodeId]:
        """The unfixed candidate whose relaxed value is closest to 0.5."""
        best: Optional[NodeId] = None
        best_distance = 0.5 - _INT_TOL
        for candidate, value in zip(candidates, x_values):
            if candidate in fixing:
                continue
            distance = abs(value - 0.5)
            if distance < best_distance:
                best_distance = distance
                best = candidate
        if best is not None:
            return best
        # No fractional variable but some are still unfixed: if any unfixed
        # remains they are integral in the relaxation, which is fine.
        return None


def _solve_with_scipy_milp(model: MILPModel) -> Optional[MILPResult]:
    """Solve the linearized program with scipy's HiGHS MILP, if available."""
    milp = getattr(optimize, "milp", None)
    if milp is None:  # pragma: no cover - scipy always ships milp in our env
        return None
    constraints = []
    if model.a_ub.shape[0]:
        constraints.append(optimize.LinearConstraint(model.a_ub, -np.inf, model.b_ub))
    if model.a_eq.shape[0]:
        constraints.append(optimize.LinearConstraint(model.a_eq, model.b_eq, model.b_eq))
    result = milp(
        c=model.objective,
        constraints=constraints,
        integrality=np.ones(model.variable_count),
        bounds=optimize.Bounds(0, 1),
    )
    if not result.success or result.x is None:
        return None
    hubs = model.decode_placement(result.x)
    if not hubs:
        return None
    plan = plan_for_placement(model.problem, hubs, method="milp-highs")
    return MILPResult(
        plan=plan,
        objective_value=plan.balance_cost,
        nodes_explored=0,
        backend="scipy-highs",
        optimal=True,
    )


def solve_placement_milp(
    problem: PlacementProblem,
    backend: str = "auto",
    node_limit: int = 2000,
    initial_hubs: Optional[Sequence[NodeId]] = None,
) -> MILPResult:
    """Solve the placement problem exactly through the MILP formulation.

    Args:
        problem: The placement instance (small-scale: the MILP grows as
            ``O(|V_SNC|^2 * |V_CLI|)`` variables).
        backend: ``"auto"`` (scipy HiGHS MILP if available, otherwise the
            in-house branch and bound), ``"scipy"`` or ``"bnb"``.
        node_limit: Node budget for the in-house branch and bound.
        initial_hubs: Optional warm-start placement used as the first incumbent.
    """
    model = linearize_placement(problem)
    if backend not in ("auto", "scipy", "bnb"):
        raise ValueError(f"unknown MILP backend {backend!r}")
    if backend in ("auto", "scipy"):
        result = _solve_with_scipy_milp(model)
        if result is not None:
            return result
        if backend == "scipy":
            raise RuntimeError("scipy.optimize.milp failed to solve the placement MILP")
    solver = BranchAndBoundSolver(model, node_limit=node_limit)
    return solver.solve(initial_hubs=initial_hubs)
