"""Data model of the PCH placement problem and its solutions.

:class:`PlacementProblem` carries the paper's decision-variable structure
(binary placements ``x_n``, binary assignments ``y_mn``, equations 1-5) plus
the execution ``backend`` knob shared with the routing and baseline
subsystems: ``"python"`` evaluates objectives through the scalar nested-dict
reference arithmetic, ``"numpy"`` (the default) through the index-mapped
:class:`~repro.placement.costs.CostArrays` kernels.  Both backends make
identical decisions; the differential suite in
``tests/placement/test_backend_equivalence.py`` pins them together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

from repro.placement.costs import CostArrays, PlacementCostModel
from repro.routing.prices import validate_backend

NodeId = Hashable


@dataclass(frozen=True)
class PlacementPlan:
    """A solved placement: which candidates are hubs and who serves each client.

    Attributes:
        hubs: The placed smooth nodes (``x_n = 1``).
        assignment: Mapping from each client to the hub serving it
            (``y_mn = 1``).
        management_cost: ``C_M(y)`` of the plan.
        synchronization_cost: ``C_S(x, y)`` of the plan.
        balance_cost: ``C_B = C_M + omega * C_S`` of the plan.
        omega: Weight between management and synchronization cost.
        method: Name of the solver that produced the plan.
    """

    hubs: FrozenSet[NodeId]
    assignment: Mapping[NodeId, NodeId]
    management_cost: float
    synchronization_cost: float
    balance_cost: float
    omega: float
    method: str = "unspecified"

    @property
    def hub_count(self) -> int:
        """Number of placed smooth nodes."""
        return len(self.hubs)

    def clients_of(self, hub: NodeId) -> Tuple[NodeId, ...]:
        """Clients assigned to a given hub."""
        return tuple(client for client, assigned in self.assignment.items() if assigned == hub)

    def load_per_hub(self) -> Dict[NodeId, int]:
        """Number of clients served by each placed hub (load-balance view)."""
        loads: Dict[NodeId, int] = {hub: 0 for hub in self.hubs}
        for hub in self.assignment.values():
            loads[hub] = loads.get(hub, 0) + 1
        return loads


class PlacementProblem:
    """An instance of the placement problem: a cost model plus the weight omega.

    The problem's decision variables follow the paper: binary placement
    variables ``x_n`` for every candidate and binary assignment variables
    ``y_mn`` for every (client, candidate) pair, with each client assigned to
    exactly one *placed* candidate.
    """

    def __init__(
        self,
        cost_model: PlacementCostModel,
        omega: float = 0.05,
        backend: str = "numpy",
    ) -> None:
        if omega < 0:
            raise ValueError("omega must be non-negative")
        self.costs = cost_model
        self.omega = float(omega)
        self.backend = validate_backend(backend)

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def clients(self):
        """Client node ids (``V_CLI``)."""
        return self.costs.clients

    @property
    def candidates(self):
        """Candidate smooth-node ids (``V_SNC``)."""
        return self.costs.candidates

    @property
    def client_count(self) -> int:
        """Number of clients."""
        return len(self.costs.clients)

    @property
    def candidate_count(self) -> int:
        """Number of candidate smooth nodes."""
        return len(self.costs.candidates)

    @property
    def arrays(self) -> CostArrays:
        """The cost model's dense index-mapped mirror (built lazily, cached)."""
        return self.costs.as_arrays()

    # ------------------------------------------------------------------ #
    # plan construction and validation
    # ------------------------------------------------------------------ #
    def make_plan(
        self,
        hubs: Iterable[NodeId],
        assignment: Mapping[NodeId, NodeId],
        method: str = "unspecified",
    ) -> PlacementPlan:
        """Build a :class:`PlacementPlan` (with costs) from raw decisions."""
        hub_set = frozenset(hubs)
        self.validate(hub_set, assignment)
        management = self.costs.management_cost(assignment)
        synchronization = self.costs.synchronization_cost(hub_set, assignment)
        balance = management + self.omega * synchronization
        return PlacementPlan(
            hubs=hub_set,
            assignment=dict(assignment),
            management_cost=management,
            synchronization_cost=synchronization,
            balance_cost=balance,
            omega=self.omega,
            method=method,
        )

    def validate(self, hubs: FrozenSet[NodeId], assignment: Mapping[NodeId, NodeId]) -> None:
        """Check a candidate solution against the problem constraints.

        Raises ``ValueError`` if the placement uses a non-candidate node, a
        client is unassigned / assigned to an unplaced node, or an unknown
        client appears in the assignment.
        """
        if not hubs:
            raise ValueError("a placement must contain at least one smooth node")
        unknown_hubs = hubs - set(self.candidates)
        if unknown_hubs:
            raise ValueError(f"placement uses non-candidate nodes: {sorted(map(repr, unknown_hubs))}")
        client_set = set(self.clients)
        assigned_clients = set(assignment)
        missing = client_set - assigned_clients
        if missing:
            raise ValueError(f"clients without an assigned smooth node: {sorted(map(repr, missing))}")
        extra = assigned_clients - client_set
        if extra:
            raise ValueError(f"assignment references unknown clients: {sorted(map(repr, extra))}")
        for client, hub in assignment.items():
            if hub not in hubs:
                raise ValueError(f"client {client!r} is assigned to unplaced node {hub!r}")

    def balance_cost(self, hubs: Iterable[NodeId], assignment: Mapping[NodeId, NodeId]) -> float:
        """``C_B`` of an explicit (placement, assignment) pair."""
        return self.costs.balance_cost(hubs, assignment, self.omega)

    def with_omega(self, omega: float) -> "PlacementProblem":
        """A copy of the problem with a different cost weight (for omega sweeps)."""
        return PlacementProblem(self.costs, omega, backend=self.backend)

    def with_backend(self, backend: str) -> "PlacementProblem":
        """A copy of the problem evaluated on a different execution backend."""
        return PlacementProblem(self.costs, self.omega, backend=backend)
