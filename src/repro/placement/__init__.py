"""PCH placement optimization (paper sections IV-B and IV-C).

The placement problem selects which candidate nodes become smooth nodes
(payment channel hubs) and assigns every client to exactly one of them so
that the *balance cost* -- management cost of client/hub communication plus
``omega`` times the hub/hub synchronization cost -- is minimized.

The subpackage provides:

* :mod:`repro.placement.costs` -- hop-count based cost model (zeta, delta, epsilon).
* :mod:`repro.placement.problem` -- the problem/plan data model and cost evaluation.
* :mod:`repro.placement.assignment` -- Lemma-1 optimal client assignment.
* :mod:`repro.placement.bruteforce` -- exhaustive optimum for tiny instances.
* :mod:`repro.placement.milp` -- the paper's MILP linearization and a
  branch-and-bound solver over it (small-scale optimal solution).
* :mod:`repro.placement.supermodular` -- the double-greedy 1/2-approximation
  (large-scale solution, Algorithm 1) with the incremental cached-gain
  :class:`~repro.placement.supermodular.ObjectiveEngine`.
* :mod:`repro.placement.solver` -- a unified facade that picks the right method.
* :mod:`repro.placement.compare` -- the sharded figure-9 sweep pipeline behind
  ``python -m repro place-compare`` (imported on demand, not re-exported here,
  to keep this package import-light).

Every evaluation path honors the repo-wide ``backend="python"|"numpy"``
knob carried by :class:`~repro.placement.problem.PlacementProblem`; see
``docs/architecture.md`` for the convention.
"""

from repro.placement.assignment import optimal_assignment
from repro.placement.bruteforce import brute_force_placement
from repro.placement.costs import CostArrays, PlacementCostModel, cost_model_from_network
from repro.placement.milp import MILPModel, linearize_placement, solve_placement_milp
from repro.placement.problem import PlacementPlan, PlacementProblem
from repro.placement.solver import PlacementSolver, solve_placement
from repro.placement.supermodular import (
    ObjectiveEngine,
    double_greedy_placement,
    greedy_descent_placement,
    is_supermodular,
)

__all__ = [
    "PlacementCostModel",
    "CostArrays",
    "cost_model_from_network",
    "PlacementProblem",
    "PlacementPlan",
    "optimal_assignment",
    "ObjectiveEngine",
    "greedy_descent_placement",
    "brute_force_placement",
    "MILPModel",
    "linearize_placement",
    "solve_placement_milp",
    "double_greedy_placement",
    "is_supermodular",
    "PlacementSolver",
    "solve_placement",
]
