"""PCH placement optimization (paper sections IV-B and IV-C).

The placement problem selects which candidate nodes become smooth nodes
(payment channel hubs) and assigns every client to exactly one of them so
that the *balance cost* -- management cost of client/hub communication plus
``omega`` times the hub/hub synchronization cost -- is minimized.

The subpackage provides:

* :mod:`repro.placement.costs` -- hop-count based cost model (zeta, delta, epsilon).
* :mod:`repro.placement.problem` -- the problem/plan data model and cost evaluation.
* :mod:`repro.placement.assignment` -- Lemma-1 optimal client assignment.
* :mod:`repro.placement.bruteforce` -- exhaustive optimum for tiny instances.
* :mod:`repro.placement.milp` -- the paper's MILP linearization and a
  branch-and-bound solver over it (small-scale optimal solution).
* :mod:`repro.placement.supermodular` -- the double-greedy 1/2-approximation
  (large-scale solution, Algorithm 1).
* :mod:`repro.placement.solver` -- a unified facade that picks the right method.
"""

from repro.placement.assignment import optimal_assignment
from repro.placement.bruteforce import brute_force_placement
from repro.placement.costs import PlacementCostModel, cost_model_from_network
from repro.placement.milp import MILPModel, linearize_placement, solve_placement_milp
from repro.placement.problem import PlacementPlan, PlacementProblem
from repro.placement.solver import PlacementSolver, solve_placement
from repro.placement.supermodular import double_greedy_placement, is_supermodular

__all__ = [
    "PlacementCostModel",
    "cost_model_from_network",
    "PlacementProblem",
    "PlacementPlan",
    "optimal_assignment",
    "brute_force_placement",
    "MILPModel",
    "linearize_placement",
    "solve_placement_milp",
    "double_greedy_placement",
    "is_supermodular",
    "PlacementSolver",
    "solve_placement",
]
