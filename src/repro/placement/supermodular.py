"""Large-scale approximate placement via supermodular minimization.

For large networks the MILP becomes intractable, so the paper minimizes the
set function ``f(X) = C_B(x_X, y(x_X))`` (equation 14) by maximizing its
submodular complement ``g(X) = f_ub - f(X)`` with the Buchbinder et al.
double-greedy algorithm (Algorithm 1 in the paper), which carries a tight
1/2 approximation guarantee for unconstrained submodular maximization.

This module implements:

* :func:`placement_objective` -- the set function ``f``, evaluated from
  scratch (the reference the incremental engine is validated against),
* :func:`objective_upper_bound` -- a valid ``f_ub``,
* :class:`ObjectiveEngine` -- an incremental evaluator of ``f`` over an
  evolving placement, with per-candidate marginal-gain caching; probes run
  on the problem's execution backend (scalar dict walks or the
  :class:`~repro.placement.costs.CostArrays` kernels),
* :func:`double_greedy_placement` -- Algorithm 1 (randomized, or the
  deterministic variant when ``deterministic=True``), with an optional
  single-swap local-search polish driven by a lazy re-evaluation queue,
* :func:`greedy_descent_placement` -- a drop-while-it-helps ablation,
* :func:`is_supermodular` -- an exhaustive/sampled checker for the
  supermodularity property (used to validate Lemma 2's uniform-cost case).

Backend equivalence: both backends run the *same* decision sequence; only
the arithmetic engine differs.  Marginal gains within ``GAIN_TOLERANCE`` of
zero are snapped to exactly zero before any branch, and every gain
comparison -- the deterministic keep/drop choice, the local-search
improvement test and greedy descent's cross-candidate best-removal pick --
carries the same tolerance, so floating-point noise between the two
evaluation orders cannot flip a decision.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.placement.assignment import (
    plan_for_placement,
    placement_cost,
    vectorized_placement_cost,
)
from repro.placement.problem import PlacementPlan, PlacementProblem

NodeId = Hashable

#: Marginal gains within this tolerance of zero are treated as exactly zero,
#: and improvement/keep-drop comparisons use it as slack, so both execution
#: backends branch identically on (near-)tied probes.
GAIN_TOLERANCE = 1e-12


def placement_objective(problem: PlacementProblem, subset: Iterable[NodeId]) -> float:
    """The set function ``f(X)``: balance cost of placement ``X`` under Lemma 1.

    The empty placement is infeasible; it is mapped to the objective upper
    bound so that the double-greedy arithmetic stays finite while the empty
    set remains unattractive.  This is the from-scratch evaluation; the
    solvers go through :class:`ObjectiveEngine`, whose incremental values the
    property suite pins to this function.
    """
    subset = set(subset)
    if not subset:
        return objective_upper_bound(problem)
    return placement_cost(problem, subset)


def objective_upper_bound(problem: PlacementProblem) -> float:
    """A finite ``f_ub`` with ``f_ub >= f(X)`` for every non-empty placement ``X``.

    Management cost is bounded by assigning every client to its worst
    candidate; synchronization cost is bounded by placing every candidate and
    charging every pair for the full client population.
    """
    costs = problem.costs
    management_bound = sum(
        max(costs.zeta[client][candidate] for candidate in problem.candidates)
        for client in problem.clients
    )
    client_count = len(problem.clients)
    synchronization_bound = sum(
        costs.delta[n][l] * client_count + costs.epsilon[n][l]
        for n in problem.candidates
        for l in problem.candidates
    )
    return management_bound + problem.omega * synchronization_bound + 1.0


class ObjectiveEngine:
    """Incremental evaluator of ``f`` over an evolving placement.

    Instead of re-running :func:`placement_objective` from scratch for every
    probe, the engine maintains the current subset, its objective value and
    (on the numpy backend) the sorted hub-row vector of the
    :class:`~repro.placement.costs.CostArrays` mirror.  Marginal gains are
    cached per candidate and keyed by a state *version* that bumps on every
    applied move: a cached gain is served for free while the subset is
    unchanged and lazily re-evaluated the next time the candidate is probed
    after a move -- the re-evaluation queue of the local search leans on
    exactly this.

    On ``backend="python"`` every evaluation delegates to the scalar
    reference arithmetic, so the engine adds caching without changing any
    number the reference would produce.
    """

    def __init__(self, problem: PlacementProblem, members: Iterable[NodeId] = ()) -> None:
        self.problem = problem
        self.backend = problem.backend
        self.members: Set[NodeId] = set(members)
        self.version = 0
        #: ``candidate -> (version, gain, resulting objective value)``.
        self._gain_cache: Dict[NodeId, Tuple[int, float, float]] = {}
        if self.backend == "numpy":
            self._rows = problem.arrays.candidate_rows(self.members)
        self.value = self._evaluate_members()

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_members(self) -> float:
        if not self.members:
            return objective_upper_bound(self.problem)
        if self.backend == "numpy":
            return vectorized_placement_cost(self.problem, self._rows)
        return placement_cost(self.problem, self.members, backend="python")

    def _evaluate_subset(self, subset: Set[NodeId], rows: Optional[np.ndarray]) -> float:
        if not subset:
            return objective_upper_bound(self.problem)
        if self.backend == "numpy":
            return vectorized_placement_cost(self.problem, rows)
        return placement_cost(self.problem, subset, backend="python")

    def _probe(self, candidate: NodeId) -> Tuple[float, float]:
        """(gain, resulting value) of toggling ``candidate``, cache-backed."""
        cached = self._gain_cache.get(candidate)
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        if candidate in self.members:
            subset = self.members - {candidate}
            rows = None
            if self.backend == "numpy":
                row = self.problem.arrays.candidate_index[candidate]
                rows = self._rows[self._rows != row]
        else:
            subset = self.members | {candidate}
            rows = None
            if self.backend == "numpy":
                row = self.problem.arrays.candidate_index[candidate]
                position = int(np.searchsorted(self._rows, row))
                rows = np.insert(self._rows, position, row)
        value = self._evaluate_subset(subset, rows)
        gain = value - self.value
        if abs(gain) < GAIN_TOLERANCE:
            gain = 0.0
        self._gain_cache[candidate] = (self.version, gain, value)
        return gain, value

    def add_gain(self, candidate: NodeId) -> float:
        """``f(S | {u}) - f(S)``; ``candidate`` must not be a member."""
        assert candidate not in self.members
        return self._probe(candidate)[0]

    def remove_gain(self, candidate: NodeId) -> float:
        """``f(S - {u}) - f(S)``; ``candidate`` must be a member."""
        assert candidate in self.members
        return self._probe(candidate)[0]

    def toggle_gain(self, candidate: NodeId) -> Optional[float]:
        """Gain of flipping the candidate's membership; None if it would empty S."""
        if candidate in self.members and len(self.members) == 1:
            return None
        return self._probe(candidate)[0]

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def apply_toggle(self, candidate: NodeId) -> None:
        """Flip the candidate's membership, reusing the probe's exact value."""
        _, value = self._probe(candidate)
        if candidate in self.members:
            self.members.remove(candidate)
            if self.backend == "numpy":
                row = self.problem.arrays.candidate_index[candidate]
                self._rows = self._rows[self._rows != row]
        else:
            self.members.add(candidate)
            if self.backend == "numpy":
                row = self.problem.arrays.candidate_index[candidate]
                position = int(np.searchsorted(self._rows, row))
                self._rows = np.insert(self._rows, position, row)
        self.value = value
        self.version += 1


def double_greedy_placement(
    problem: PlacementProblem,
    deterministic: bool = False,
    local_search: bool = True,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = 0,
    element_order: Optional[Sequence[NodeId]] = None,
) -> PlacementPlan:
    """Algorithm 1: double-greedy placement approximation.

    Probes run through two :class:`ObjectiveEngine` instances (the growing
    lower set and the shrinking upper set), so each candidate costs two
    incremental evaluations instead of two from-scratch
    :func:`placement_objective` recomputations.

    Args:
        problem: The placement instance.
        deterministic: Use the deterministic variant (keep/drop by comparing
            marginal gains) instead of the randomized 1/2-approximation.
        local_search: Apply a single-element add/remove local search to the
            double-greedy output; this never worsens the plan and mirrors the
            "community keeps optimizing" behaviour of the paper's contract.
        rng: Random generator used by the randomized variant.
        seed: Seed for a fresh generator when ``rng`` is not supplied.
        element_order: Candidate processing order ``u_1 .. u_z`` (defaults to
            the problem's candidate order).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    candidates = list(element_order) if element_order is not None else list(problem.candidates)
    if set(candidates) != set(problem.candidates):
        raise ValueError("element_order must be a permutation of the candidate set")

    lower = ObjectiveEngine(problem)
    upper = ObjectiveEngine(problem, candidates)

    for element in candidates:
        # In g(X) = f_ub - f(X) terms: the gain of adding to the lower set is
        # -Δf there, the gain of dropping from the upper set is -Δf there.
        gain_add = -lower.add_gain(element)
        gain_remove = -upper.remove_gain(element)
        add_gain = max(gain_add, 0.0)
        remove_gain = max(gain_remove, 0.0)
        if add_gain == 0.0 and remove_gain == 0.0:
            take_add = True  # line 10 of Algorithm 1
        elif deterministic:
            take_add = gain_add >= gain_remove - GAIN_TOLERANCE
        else:
            take_add = rng.random() < add_gain / (add_gain + remove_gain)
        if take_add:
            lower.apply_toggle(element)
        else:
            upper.apply_toggle(element)

    assert lower.members == upper.members, "double greedy must converge to a single solution"
    solution = set(lower.members)
    if not solution:
        # Infeasible corner case (can only happen on degenerate cost models):
        # fall back to the single cheapest hub, scored with the scalar
        # reference arithmetic so tie-breaks cannot differ across backends.
        solution = {
            min(candidates, key=lambda c: placement_cost(problem, {c}, backend="python"))
        }
        lower = ObjectiveEngine(problem, solution)

    if local_search:
        solution = _local_search(problem, lower)

    return plan_for_placement(problem, solution, method="double-greedy")


def _local_search(problem: PlacementProblem, engine: ObjectiveEngine) -> Set[NodeId]:
    """Single add/remove local search; stops at a local optimum.

    Sweeps the candidates in order, applying any improving toggle
    immediately, until one full pass makes no progress.  ``pending`` is the
    lazy re-evaluation queue: a candidate's gain is (re-)computed only when
    it is popped, and the engine serves it from the version-keyed cache when
    the solution has not changed since the last probe -- which makes the
    final confirming pass (every candidate re-checked, nothing improves)
    mostly cache hits.
    """
    candidates = list(problem.candidates)
    pending = deque(candidates)
    improved_in_pass = False
    while True:
        if not pending:
            if not improved_in_pass:
                break
            pending = deque(candidates)
            improved_in_pass = False
            continue
        candidate = pending.popleft()
        gain = engine.toggle_gain(candidate)
        if gain is not None and gain < -GAIN_TOLERANCE:
            engine.apply_toggle(candidate)
            improved_in_pass = True
    return set(engine.members)


def greedy_descent_placement(problem: PlacementProblem) -> PlacementPlan:
    """A simple greedy-descent baseline: start from all candidates, drop while it helps.

    Provided as an ablation against the double-greedy algorithm; it has no
    approximation guarantee for non-monotone objectives.  Removal probes go
    through the same gain cache as the double greedy, so each round costs one
    incremental evaluation per surviving candidate.
    """
    engine = ObjectiveEngine(problem, problem.candidates)
    improved = True
    while improved and len(engine.members) > 1:
        improved = False
        best_candidate = None
        best_gain = -GAIN_TOLERANCE
        for candidate in problem.candidates:
            if candidate not in engine.members:
                continue
            gain = engine.remove_gain(candidate)
            # Tolerance also on the cross-candidate comparison: a later
            # candidate must beat the incumbent by more than floating-point
            # noise, so near-tied gains resolve to the same (earlier,
            # candidate-order) choice on both backends.
            if gain < best_gain - GAIN_TOLERANCE:
                best_gain = gain
                best_candidate = candidate
        if best_candidate is not None:
            engine.apply_toggle(best_candidate)
            improved = True
    return plan_for_placement(problem, engine.members, method="greedy-descent")


def is_supermodular(
    problem: PlacementProblem,
    max_subset_size: Optional[int] = None,
    sample_checks: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 1e-9,
) -> bool:
    """Check definition 2 (supermodularity) of the objective on an instance.

    For every pair of nested subsets ``A ⊆ B`` and element ``i ∉ B`` the
    marginal increase at ``B`` must be at least the marginal increase at
    ``A``.  Exhaustive over all subsets when the candidate set is small;
    ``sample_checks`` random triples otherwise.
    """
    candidates = list(problem.candidates)
    z = len(candidates)
    if sample_checks is None and z > 12:
        raise ValueError("exhaustive supermodularity check is limited to 12 candidates")

    def f(subset: Tuple[NodeId, ...]) -> float:
        return placement_objective(problem, subset)

    if sample_checks is not None:
        if rng is None:
            rng = np.random.default_rng(0)
        for _ in range(sample_checks):
            mask_b = rng.random(z) < 0.5
            b = {c for c, take in zip(candidates, mask_b) if take}
            if len(b) >= z:
                continue
            a = {c for c in b if rng.random() < 0.5}
            outside = [c for c in candidates if c not in b]
            i = outside[int(rng.integers(len(outside)))]
            lhs = f(tuple(a | {i})) - f(tuple(a))
            rhs = f(tuple(b | {i})) - f(tuple(b))
            if lhs > rhs + tolerance:
                return False
        return True

    limit = z if max_subset_size is None else min(max_subset_size, z)
    cache: Dict[FrozenSet[NodeId], float] = {}

    def f_cached(subset: FrozenSet[NodeId]) -> float:
        if subset not in cache:
            cache[subset] = f(tuple(subset))
        return cache[subset]

    subsets: List[Tuple[NodeId, ...]] = []
    for size in range(0, limit + 1):
        subsets.extend(combinations(candidates, size))
    for b in subsets:
        b_set = frozenset(b)
        outside = [c for c in candidates if c not in b_set]
        for size in range(0, len(b) + 1):
            for a in combinations(b, size):
                a_set = frozenset(a)
                for i in outside:
                    lhs = f_cached(a_set | {i}) - f_cached(a_set)
                    rhs = f_cached(b_set | {i}) - f_cached(b_set)
                    if lhs > rhs + tolerance:
                        return False
    return True
