"""Large-scale approximate placement via supermodular minimization.

For large networks the MILP becomes intractable, so the paper minimizes the
set function ``f(X) = C_B(x_X, y(x_X))`` (equation 14) by maximizing its
submodular complement ``g(X) = f_ub - f(X)`` with the Buchbinder et al.
double-greedy algorithm (Algorithm 1 in the paper), which carries a tight
1/2 approximation guarantee for unconstrained submodular maximization.

This module implements:

* :func:`placement_objective` -- the set function ``f``,
* :func:`objective_upper_bound` -- a valid ``f_ub``,
* :func:`double_greedy_placement` -- Algorithm 1 (randomized, or the
  deterministic variant when ``deterministic=True``), with an optional
  single-swap local-search polish,
* :func:`is_supermodular` -- an exhaustive/sampled checker for the
  supermodularity property (used to validate Lemma 2's uniform-cost case).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.placement.assignment import plan_for_placement, placement_cost
from repro.placement.problem import PlacementPlan, PlacementProblem

NodeId = Hashable


def placement_objective(problem: PlacementProblem, subset: Iterable[NodeId]) -> float:
    """The set function ``f(X)``: balance cost of placement ``X`` under Lemma 1.

    The empty placement is infeasible; it is mapped to the objective upper
    bound so that the double-greedy arithmetic stays finite while the empty
    set remains unattractive.
    """
    subset = set(subset)
    if not subset:
        return objective_upper_bound(problem)
    return placement_cost(problem, subset)


def objective_upper_bound(problem: PlacementProblem) -> float:
    """A finite ``f_ub`` with ``f_ub >= f(X)`` for every non-empty placement ``X``.

    Management cost is bounded by assigning every client to its worst
    candidate; synchronization cost is bounded by placing every candidate and
    charging every pair for the full client population.
    """
    costs = problem.costs
    management_bound = sum(
        max(costs.zeta[client][candidate] for candidate in problem.candidates)
        for client in problem.clients
    )
    client_count = len(problem.clients)
    synchronization_bound = sum(
        costs.delta[n][l] * client_count + costs.epsilon[n][l]
        for n in problem.candidates
        for l in problem.candidates
    )
    return management_bound + problem.omega * synchronization_bound + 1.0


def double_greedy_placement(
    problem: PlacementProblem,
    deterministic: bool = False,
    local_search: bool = True,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = 0,
    element_order: Optional[Sequence[NodeId]] = None,
) -> PlacementPlan:
    """Algorithm 1: double-greedy placement approximation.

    Args:
        problem: The placement instance.
        deterministic: Use the deterministic variant (keep/drop by comparing
            marginal gains) instead of the randomized 1/2-approximation.
        local_search: Apply a single-element add/remove local search to the
            double-greedy output; this never worsens the plan and mirrors the
            "community keeps optimizing" behaviour of the paper's contract.
        rng: Random generator used by the randomized variant.
        seed: Seed for a fresh generator when ``rng`` is not supplied.
        element_order: Candidate processing order ``u_1 .. u_z`` (defaults to
            the problem's candidate order).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    candidates = list(element_order) if element_order is not None else list(problem.candidates)
    if set(candidates) != set(problem.candidates):
        raise ValueError("element_order must be a permutation of the candidate set")

    f_ub = objective_upper_bound(problem)

    def g(subset: Set[NodeId]) -> float:
        return f_ub - placement_objective(problem, subset)

    lower: Set[NodeId] = set()
    upper: Set[NodeId] = set(candidates)
    g_lower = g(lower)
    g_upper = g(upper)

    for element in candidates:
        with_element = lower | {element}
        without_element = upper - {element}
        g_with = g(with_element)
        g_without = g(without_element)
        gain_add = g_with - g_lower
        gain_remove = g_without - g_upper
        add_gain = max(gain_add, 0.0)
        remove_gain = max(gain_remove, 0.0)
        if add_gain == 0.0 and remove_gain == 0.0:
            take_add = True  # line 10 of Algorithm 1
        elif deterministic:
            take_add = gain_add >= gain_remove
        else:
            take_add = rng.random() < add_gain / (add_gain + remove_gain)
        if take_add:
            lower = with_element
            g_lower = g_with
        else:
            upper = without_element
            g_upper = g_without

    assert lower == upper, "double greedy must converge to a single solution"
    solution = lower
    if not solution:
        # Infeasible corner case (can only happen on degenerate cost models):
        # fall back to the single cheapest hub.
        solution = {min(candidates, key=lambda c: placement_cost(problem, {c}))}

    if local_search:
        solution = _local_search(problem, solution)

    return plan_for_placement(problem, solution, method="double-greedy")


def _local_search(problem: PlacementProblem, solution: Set[NodeId]) -> Set[NodeId]:
    """Single add/remove local search; stops at a local optimum."""
    current = set(solution)
    current_cost = placement_objective(problem, current)
    improved = True
    while improved:
        improved = False
        for candidate in problem.candidates:
            if candidate in current:
                if len(current) == 1:
                    continue
                trial = current - {candidate}
            else:
                trial = current | {candidate}
            trial_cost = placement_objective(problem, trial)
            if trial_cost < current_cost - 1e-12:
                current = trial
                current_cost = trial_cost
                improved = True
    return current


def greedy_descent_placement(problem: PlacementProblem) -> PlacementPlan:
    """A simple greedy-descent baseline: start from all candidates, drop while it helps.

    Provided as an ablation against the double-greedy algorithm; it has no
    approximation guarantee for non-monotone objectives.
    """
    current: Set[NodeId] = set(problem.candidates)
    current_cost = placement_objective(problem, current)
    improved = True
    while improved and len(current) > 1:
        improved = False
        best_candidate = None
        best_cost = current_cost
        for candidate in current:
            trial_cost = placement_objective(problem, current - {candidate})
            if trial_cost < best_cost - 1e-12:
                best_cost = trial_cost
                best_candidate = candidate
        if best_candidate is not None:
            current.remove(best_candidate)
            current_cost = best_cost
            improved = True
    return plan_for_placement(problem, current, method="greedy-descent")


def is_supermodular(
    problem: PlacementProblem,
    max_subset_size: Optional[int] = None,
    sample_checks: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 1e-9,
) -> bool:
    """Check definition 2 (supermodularity) of the objective on an instance.

    For every pair of nested subsets ``A ⊆ B`` and element ``i ∉ B`` the
    marginal increase at ``B`` must be at least the marginal increase at
    ``A``.  Exhaustive over all subsets when the candidate set is small;
    ``sample_checks`` random triples otherwise.
    """
    candidates = list(problem.candidates)
    z = len(candidates)
    if sample_checks is None and z > 12:
        raise ValueError("exhaustive supermodularity check is limited to 12 candidates")

    def f(subset: Tuple[NodeId, ...]) -> float:
        return placement_objective(problem, subset)

    if sample_checks is not None:
        if rng is None:
            rng = np.random.default_rng(0)
        for _ in range(sample_checks):
            mask_b = rng.random(z) < 0.5
            b = {c for c, take in zip(candidates, mask_b) if take}
            if len(b) >= z:
                continue
            a = {c for c in b if rng.random() < 0.5}
            outside = [c for c in candidates if c not in b]
            i = outside[int(rng.integers(len(outside)))]
            lhs = f(tuple(a | {i})) - f(tuple(a))
            rhs = f(tuple(b | {i})) - f(tuple(b))
            if lhs > rhs + tolerance:
                return False
        return True

    limit = z if max_subset_size is None else min(max_subset_size, z)
    cache: Dict[FrozenSet[NodeId], float] = {}

    def f_cached(subset: FrozenSet[NodeId]) -> float:
        if subset not in cache:
            cache[subset] = f(tuple(subset))
        return cache[subset]

    subsets: List[Tuple[NodeId, ...]] = []
    for size in range(0, limit + 1):
        subsets.extend(combinations(candidates, size))
    for b in subsets:
        b_set = frozenset(b)
        outside = [c for c in candidates if c not in b_set]
        for size in range(0, len(b) + 1):
            for a in combinations(b, size):
                a_set = frozenset(a)
                for i in outside:
                    lhs = f_cached(a_set | {i}) - f_cached(a_set)
                    rhs = f_cached(b_set | {i}) - f_cached(b_set)
                    if lhs > rhs + tolerance:
                        return False
    return True
