"""Unified placement solver facade (paper section V).

Routes a placement instance to the right algorithm:

* very small instances -> brute force (optional, mainly for verification),
* small-scale instances -> the optimal solution, either through the paper's
  MILP formulation (:mod:`repro.placement.milp`) or through a lighter
  combinatorial branch-and-bound that exploits Lemma 1 directly,
* large-scale instances -> the double-greedy supermodular approximation
  (:mod:`repro.placement.supermodular`).

The facade also builds cost models straight from a
:class:`~repro.topology.network.PCNetwork`, which is how the rest of the
library (and the Splicer system itself) invokes placement.

Execution backends: :func:`solve_placement` and :func:`build_problem` accept
the repo-wide ``backend="python"|"numpy"`` knob (numpy default).  The knob
selects the arithmetic of the *scalable* paths -- the double-greedy family
and the Lemma-1 client attachment -- which is where large instances spend
their time.  The exact enumerative methods (``brute``/``milp``/``exact``)
always score candidate subsets with the scalar reference arithmetic: they
are small-scale by definition, and evaluating ties with one fixed evaluation
order keeps their reported optimum identical whatever the backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Set, Tuple, Union


from repro.placement.assignment import placement_cost, plan_for_placement
from repro.placement.bruteforce import MAX_BRUTE_FORCE_CANDIDATES, brute_force_placement
from repro.placement.costs import cost_model_from_network
from repro.placement.milp import solve_placement_milp
from repro.placement.problem import PlacementPlan, PlacementProblem
from repro.placement.supermodular import double_greedy_placement
from repro.topology.network import PCNetwork

NodeId = Hashable

#: Methods understood by the facade.
METHODS = ("auto", "brute", "milp", "exact", "greedy")

#: Candidate-count threshold below which "auto" uses an exact method.
SMALL_SCALE_CANDIDATE_LIMIT = 12


class CombinatorialBranchAndBound:
    """Exact placement search that branches on ``x`` with combinatorial bounds.

    Unlike the LP-relaxation branch and bound in :mod:`repro.placement.milp`,
    this solver never builds the (large) linearized program.  Its lower bound
    for a partial decision (some candidates forced in, some forced out) is

    ``sum_m min_{n allowed} zeta[m][n] + omega * sum_{n,l forced in} epsilon[n][l]``

    which is valid because management costs can only increase when choices
    are removed and every placed pair contributes at least its constant
    synchronization cost.  Incumbents come from Lemma-1 completion.
    """

    def __init__(self, problem: PlacementProblem, node_limit: int = 200_000) -> None:
        self.problem = problem
        self.node_limit = node_limit
        self.nodes_explored = 0

    def solve(self, initial_hubs: Optional[Sequence[NodeId]] = None) -> PlacementPlan:
        """Run the search and return the best plan found (optimal within the node budget)."""
        problem = self.problem
        candidates = list(problem.candidates)
        # Order candidates by how attractive they are as the sole hub, which
        # tends to find good incumbents early.  Subset scores use the scalar
        # reference arithmetic so the search is backend-independent.
        candidates.sort(key=lambda c: placement_cost(problem, {c}, backend="python"))

        best_hubs: Optional[Tuple[NodeId, ...]] = None
        best_cost = float("inf")
        if initial_hubs:
            warm = tuple(set(initial_hubs) & set(candidates))
            if warm:
                best_hubs = warm
                best_cost = placement_cost(problem, warm, backend="python")

        zeta = problem.costs.zeta
        epsilon = problem.costs.epsilon
        omega = problem.omega
        clients = problem.clients

        def lower_bound(forced_in: Set[NodeId], forced_out: Set[NodeId]) -> float:
            allowed = [c for c in candidates if c not in forced_out]
            if not allowed:
                return float("inf")
            management = sum(min(zeta[m][n] for n in allowed) for m in clients)
            synchronization = sum(
                epsilon[n][l] for n in forced_in for l in forced_in
            )
            return management + omega * synchronization

        def visit(index: int, forced_in: Set[NodeId], forced_out: Set[NodeId]) -> None:
            nonlocal best_hubs, best_cost
            if self.nodes_explored >= self.node_limit:
                return
            self.nodes_explored += 1
            if lower_bound(forced_in, forced_out) >= best_cost - 1e-12:
                return
            if index == len(candidates):
                if forced_in:
                    cost = placement_cost(problem, forced_in, backend="python")
                    if cost < best_cost:
                        best_cost = cost
                        best_hubs = tuple(forced_in)
                return
            candidate = candidates[index]
            # Explore "place the candidate" first: placements discovered early
            # give tighter incumbents for pruning.
            visit(index + 1, forced_in | {candidate}, forced_out)
            visit(index + 1, forced_in, forced_out | {candidate})

        visit(0, set(), set())
        if best_hubs is None:
            best_hubs = tuple(candidates)
        return plan_for_placement(self.problem, best_hubs, method="exact-bnb")


@dataclass
class PlacementSolver:
    """Facade over the placement algorithms.

    Attributes:
        problem: The placement instance to solve.
        method: One of :data:`METHODS`; ``"auto"`` picks an exact method for
            small candidate sets and the double-greedy approximation otherwise.
        seed: Seed for the randomized double-greedy variant.  Defaults to a
            constant so repeated solves are reproducible; seeding from OS
            entropy is opt-in via ``seed=None``.
        deterministic_greedy: Use the deterministic double-greedy variant.
        local_search: Polish the greedy output with single-swap local search.
        small_scale_limit: Candidate-count threshold for ``"auto"``.
    """

    problem: PlacementProblem
    method: str = "auto"
    seed: Optional[int] = 0
    deterministic_greedy: bool = False
    local_search: bool = True
    small_scale_limit: int = SMALL_SCALE_CANDIDATE_LIMIT

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown placement method {self.method!r}; expected one of {METHODS}")

    def solve(self) -> PlacementPlan:
        """Solve the instance with the configured method."""
        method = self._resolve_method()
        if method == "brute":
            return brute_force_placement(self.problem)
        if method == "milp":
            warm = self._greedy_plan()
            return solve_placement_milp(self.problem, initial_hubs=tuple(warm.hubs)).plan
        if method == "exact":
            warm = self._greedy_plan()
            solver = CombinatorialBranchAndBound(self.problem)
            return solver.solve(initial_hubs=tuple(warm.hubs))
        return self._greedy_plan()

    def _resolve_method(self) -> str:
        if self.method != "auto":
            return self.method
        if self.problem.candidate_count <= min(self.small_scale_limit, MAX_BRUTE_FORCE_CANDIDATES):
            return "exact"
        return "greedy"

    def _greedy_plan(self) -> PlacementPlan:
        return double_greedy_placement(
            self.problem,
            deterministic=self.deterministic_greedy,
            local_search=self.local_search,
            seed=self.seed,
        )


def build_problem(
    network: PCNetwork,
    omega: float = 0.05,
    clients: Optional[Sequence[NodeId]] = None,
    candidates: Optional[Sequence[NodeId]] = None,
    uniform_delta: bool = False,
    backend: str = "numpy",
    hops: Optional[dict] = None,
) -> PlacementProblem:
    """Construct a placement problem from a PCN with the paper's cost model.

    ``hops`` optionally injects pre-probed per-candidate hop-count dicts
    (the figure-9 pipeline's persistent hop-matrix cache); otherwise the
    probe runs on ``backend`` (batched csgraph sweep for ``numpy``).
    """
    cost_model = cost_model_from_network(
        network,
        clients=clients,
        candidates=candidates,
        uniform_delta=uniform_delta,
        hops=hops,
        backend=backend,
    )
    return PlacementProblem(cost_model, omega=omega, backend=backend)


def solve_placement(
    network_or_problem: Union[PCNetwork, PlacementProblem],
    omega: float = 0.05,
    method: str = "auto",
    seed: Optional[int] = 0,
    backend: Optional[str] = None,
    **solver_options: object,
) -> PlacementPlan:
    """Solve the PCH placement problem for a network or a prepared instance.

    This is the public entry point of the placement subsystem (paper
    section V: the MILP of equations 6-10 at small scale, Algorithm 1's
    double-greedy approximation of the supermodular objective of equation 14
    at large scale, with Lemma-1 client attachment throughout).

    Args:
        network_or_problem: Either a :class:`PCNetwork` (the cost model is
            probed from hop counts with the paper's coefficients) or an
            already-built :class:`PlacementProblem`.
        omega: Weight between management and synchronization costs (only used
            when a network is supplied).
        method: Placement algorithm, see :data:`METHODS`.
        seed: Seed for the randomized greedy variant.
        backend: Execution backend (``"python"`` scalar reference or the
            vectorized ``"numpy"``).  ``None`` keeps a supplied problem's
            backend, and defaults to ``"numpy"`` when a network is supplied.
        **solver_options: Extra :class:`PlacementSolver` fields
            (``deterministic_greedy``, ``local_search``, ``small_scale_limit``).
    """
    if isinstance(network_or_problem, PlacementProblem):
        problem = network_or_problem
        if backend is not None and backend != problem.backend:
            problem = problem.with_backend(backend)
    else:
        problem = build_problem(
            network_or_problem, omega=omega, backend=backend or "numpy"
        )
    solver = PlacementSolver(problem, method=method, seed=seed, **solver_options)
    return solver.solve()
