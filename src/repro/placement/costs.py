"""Cost model for the PCH placement problem.

The paper defines three edge-wise cost parameters, all probed from the
network during the previous long period:

* ``zeta[m][n]``   -- management cost of assigning client ``m`` to smooth
  node ``n`` (paper setting: ``0.02 * hops(m, n)``),
* ``delta[n][l]``  -- per-client synchronization cost between smooth nodes
  ``n`` and ``l`` (paper setting: ``0.01 * hops(n, l)``),
* ``epsilon[n][l]`` -- constant synchronization cost between smooth nodes
  (paper setting: ``0.05 * hops(n, l)``).

:class:`PlacementCostModel` stores these matrices and exposes the balance
cost ``C_B = C_M + omega * C_S`` of equations (3)-(5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.topology.network import PCNetwork

NodeId = Hashable

#: Paper's coefficient for the management cost per hop (section V-A).
PAPER_ZETA_PER_HOP = 0.02
#: Paper's coefficient for the per-client synchronization cost per hop.
PAPER_DELTA_PER_HOP = 0.01
#: Paper's coefficient for the constant synchronization cost per hop.
PAPER_EPSILON_PER_HOP = 0.05


@dataclass(frozen=True)
class CostArrays:
    """Index-mapped dense mirrors of a :class:`PlacementCostModel`.

    The vectorized placement backend addresses clients and candidates by row
    index instead of node id.  Indices follow the cost model's ordering, so
    ``argmin`` tie-breaks reproduce the scalar reference's first-in-candidate-
    order behaviour exactly.

    Attributes:
        clients: Client ids in index order (row ``i`` of ``zeta``).
        candidates: Candidate ids in index order (column/row order of all
            three matrices).
        client_index: ``client id -> zeta row``.
        candidate_index: ``candidate id -> matrix row/column``.
        zeta: ``(M, Z)`` management-cost matrix.
        delta: ``(Z, Z)`` per-client synchronization-cost matrix.
        epsilon: ``(Z, Z)`` constant synchronization-cost matrix.
    """

    clients: Sequence[NodeId]
    candidates: Sequence[NodeId]
    client_index: Mapping[NodeId, int]
    candidate_index: Mapping[NodeId, int]
    zeta: np.ndarray
    delta: np.ndarray
    epsilon: np.ndarray

    @property
    def client_count(self) -> int:
        """Number of clients (rows of ``zeta``)."""
        return int(self.zeta.shape[0])

    @property
    def candidate_count(self) -> int:
        """Number of candidates (rows of ``delta``/``epsilon``)."""
        return int(self.delta.shape[0])

    def candidate_rows(self, hubs: Iterable[NodeId]) -> np.ndarray:
        """Matrix rows of ``hubs``, sorted into candidate order.

        Candidate order is the scalar reference's iteration order everywhere
        (assignment tie-breaks, synchronization-part accumulation), so every
        vectorized kernel consumes hub index arrays produced here.
        """
        rows = sorted(self.candidate_index[hub] for hub in hubs)
        return np.asarray(rows, dtype=np.intp)


@dataclass
class PlacementCostModel:
    """Cost matrices of the placement problem.

    The nested-dict matrices are the scalar reference representation; the
    vectorized backend mirrors them once into :class:`CostArrays` via
    :meth:`as_arrays`.  Cost models are treated as immutable after
    construction -- mutating the dicts after the arrays were built would
    desynchronize the two representations.

    Attributes:
        clients: Ordered client node ids (``V_CLI``).
        candidates: Ordered candidate smooth-node ids (``V_SNC``).
        zeta: ``zeta[m][n]`` management cost for client ``m``, candidate ``n``.
        delta: ``delta[n][l]`` per-client synchronization cost between candidates.
        epsilon: ``epsilon[n][l]`` constant synchronization cost between candidates.
    """

    clients: List[NodeId]
    candidates: List[NodeId]
    zeta: Dict[NodeId, Dict[NodeId, float]]
    delta: Dict[NodeId, Dict[NodeId, float]]
    epsilon: Dict[NodeId, Dict[NodeId, float]]
    _arrays: Optional[CostArrays] = field(
        default=None, init=False, repr=False, compare=False
    )

    def as_arrays(self) -> CostArrays:
        """The dense index-mapped mirror of the matrices (built once, cached)."""
        if self._arrays is None:
            client_index = {client: i for i, client in enumerate(self.clients)}
            candidate_index = {cand: j for j, cand in enumerate(self.candidates)}
            zeta = np.array(
                [[self.zeta[m][n] for n in self.candidates] for m in self.clients],
                dtype=float,
            ).reshape(len(self.clients), len(self.candidates))
            delta = np.array(
                [[self.delta[n][l] for l in self.candidates] for n in self.candidates],
                dtype=float,
            ).reshape(len(self.candidates), len(self.candidates))
            epsilon = np.array(
                [[self.epsilon[n][l] for l in self.candidates] for n in self.candidates],
                dtype=float,
            ).reshape(len(self.candidates), len(self.candidates))
            self._arrays = CostArrays(
                clients=tuple(self.clients),
                candidates=tuple(self.candidates),
                client_index=client_index,
                candidate_index=candidate_index,
                zeta=zeta,
                delta=delta,
                epsilon=epsilon,
            )
        return self._arrays

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("the placement problem needs at least one candidate")
        for client in self.clients:
            row = self.zeta.get(client)
            if row is None or any(candidate not in row for candidate in self.candidates):
                raise ValueError(f"zeta is missing entries for client {client!r}")
        for n in self.candidates:
            for matrix_name, matrix in (("delta", self.delta), ("epsilon", self.epsilon)):
                row = matrix.get(n)
                if row is None or any(l not in row for l in self.candidates):
                    raise ValueError(f"{matrix_name} is missing entries for candidate {n!r}")

    # ------------------------------------------------------------------ #
    # cost evaluation (equations 3-5)
    # ------------------------------------------------------------------ #
    def management_cost(self, assignment: Mapping[NodeId, NodeId]) -> float:
        """``C_M(y)``: total client-to-hub management cost for an assignment."""
        total = 0.0
        for client, hub in assignment.items():
            total += self.zeta[client][hub]
        return total

    def synchronization_cost(
        self,
        hubs: Iterable[NodeId],
        assignment: Mapping[NodeId, NodeId],
    ) -> float:
        """``C_S(x, y)``: total hub-to-hub synchronization cost.

        Following equation (4), every ordered pair of placed hubs ``(n, l)``
        contributes ``delta[n][l] * |clients assigned to n| + epsilon[n][l]``.
        """
        hub_list = list(hubs)
        clients_per_hub: Dict[NodeId, int] = {hub: 0 for hub in hub_list}
        for hub in assignment.values():
            if hub in clients_per_hub:
                clients_per_hub[hub] += 1
        total = 0.0
        for n in hub_list:
            for l in hub_list:
                total += self.delta[n][l] * clients_per_hub[n] + self.epsilon[n][l]
        return total

    def balance_cost(
        self,
        hubs: Iterable[NodeId],
        assignment: Mapping[NodeId, NodeId],
        omega: float,
    ) -> float:
        """``C_B = C_M + omega * C_S`` (equation 5)."""
        return self.management_cost(assignment) + omega * self.synchronization_cost(hubs, assignment)

    def assignment_cost(self, client: NodeId, hub: NodeId, hubs: Sequence[NodeId], omega: float) -> float:
        """Marginal cost of assigning ``client`` to ``hub`` given placed ``hubs``.

        This is the quantity minimized in Lemma 1:
        ``omega * sum_l delta[hub][l] + zeta[client][hub]``.
        """
        return omega * sum(self.delta[hub][l] for l in hubs) + self.zeta[client][hub]

    def has_uniform_delta(self, tolerance: float = 1e-9) -> bool:
        """Whether all off-diagonal delta entries are equal (Lemma 2's condition)."""
        values = [
            self.delta[n][l]
            for n in self.candidates
            for l in self.candidates
            if n != l
        ]
        if not values:
            return True
        return max(values) - min(values) <= tolerance


def cost_model_from_network(
    network: PCNetwork,
    clients: Optional[Sequence[NodeId]] = None,
    candidates: Optional[Sequence[NodeId]] = None,
    zeta_per_hop: float = PAPER_ZETA_PER_HOP,
    delta_per_hop: float = PAPER_DELTA_PER_HOP,
    epsilon_per_hop: float = PAPER_EPSILON_PER_HOP,
    uniform_delta: bool = False,
    hops: Optional[Dict[NodeId, Dict[NodeId, int]]] = None,
    backend: Optional[str] = None,
) -> PlacementCostModel:
    """Probe hop-count based costs from a PCN, as the candidates do in the paper.

    Args:
        network: The PCN to probe.
        clients: Client set; defaults to the network's client-role nodes.
        candidates: Candidate set; defaults to the network's candidate/hub nodes.
        zeta_per_hop: Management cost per communication hop.
        delta_per_hop: Per-client synchronization cost per hop.
        epsilon_per_hop: Constant synchronization cost per hop.
        uniform_delta: Replace the hop-based delta with its mean value, which
            makes the objective provably supermodular (Lemma 2's uniform-cost
            case) -- used by the large-scale approximation experiments.
        hops: Pre-probed per-candidate hop-count dicts (e.g. from the
            figure-9 pipeline's persistent :class:`HopMatrixStore`); must
            cover every candidate.  ``None`` probes the network.
        backend: Probe backend: ``"numpy"`` runs one batched
            ``scipy.sparse.csgraph`` sweep over all candidates, ``"python"``
            the per-candidate networkx BFS.  ``None`` follows the network's
            default; hop counts are identical either way.
    """
    client_list = list(clients) if clients is not None else network.clients()
    candidate_list = list(candidates) if candidates is not None else network.candidates()
    if not candidate_list:
        raise ValueError("the network has no candidate smooth nodes")

    if hops is not None:
        hop_from_candidate = {candidate: hops[candidate] for candidate in candidate_list}
    elif network.resolve_backend(backend) == "numpy":
        from repro.topology.path_store import hop_dicts_from_rows

        node_order, matrix = network.hop_count_rows(candidate_list)
        hop_from_candidate = hop_dicts_from_rows(node_order, candidate_list, matrix)
    else:
        hop_from_candidate: Dict[NodeId, Dict[NodeId, int]] = {
            candidate: network.hop_counts_from(candidate, backend="python")
            for candidate in candidate_list
        }
    fallback_hops = max(network.node_count(), 2)

    zeta: Dict[NodeId, Dict[NodeId, float]] = {}
    for client in client_list:
        zeta[client] = {}
        for candidate in candidate_list:
            hops = hop_from_candidate[candidate].get(client, fallback_hops)
            zeta[client][candidate] = zeta_per_hop * hops

    delta: Dict[NodeId, Dict[NodeId, float]] = {}
    epsilon: Dict[NodeId, Dict[NodeId, float]] = {}
    for n in candidate_list:
        delta[n] = {}
        epsilon[n] = {}
        for l in candidate_list:
            hops = 0 if n == l else hop_from_candidate[n].get(l, fallback_hops)
            delta[n][l] = delta_per_hop * hops
            epsilon[n][l] = epsilon_per_hop * hops

    model = PlacementCostModel(client_list, candidate_list, zeta, delta, epsilon)
    if uniform_delta:
        model = uniformize_delta(model)
    return model


def uniformize_delta(model: PlacementCostModel) -> PlacementCostModel:
    """Replace off-diagonal delta entries by their mean (Lemma 2's uniform case)."""
    off_diagonal = [
        model.delta[n][l]
        for n in model.candidates
        for l in model.candidates
        if n != l
    ]
    mean_delta = sum(off_diagonal) / len(off_diagonal) if off_diagonal else 0.0
    delta = {
        n: {l: (0.0 if n == l else mean_delta) for l in model.candidates}
        for n in model.candidates
    }
    return PlacementCostModel(
        clients=list(model.clients),
        candidates=list(model.candidates),
        zeta={m: dict(row) for m, row in model.zeta.items()},
        delta=delta,
        epsilon={n: dict(row) for n, row in model.epsilon.items()},
    )
