"""The sharded Figure-9 placement comparison pipeline.

The paper's placement evaluation (figure 9) sweeps the cost weight ``omega``
and compares placement methods on balance cost and number of placed smooth
nodes -- the optimal solution against the double-greedy model at small
scale, model variants at scales where the optimum is intractable.  This
module reproduces that sweep as a resumable parallel pipeline behind
``python -m repro place-compare``: every ``(method, omega, seed)``
combination is one independent run sharded over worker processes through
the same JSONL grid machinery the scenario and figure-8 pipelines use
(:mod:`repro.scenarios.jsonl`).

Scales mirror the figure-8 comparison pipeline's node counts (small/60 up
to paper/3000).  Paper scale with the default numpy backend solves in
seconds per run; the scalar reference backend is available for differential
runs at the smaller scales.

Determinism: every plan-derived field of a result row is identical
whatever the worker count or completion order (topology and solver seeds
derive from the run's own ``(seed, purpose)`` pairs).  The one exception is
``solve_seconds``, which is measured wall-clock time -- a diagnostic, like
the perf harness's BENCH files, not part of the reproducibility contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.scenarios.jsonl import JsonlGridRunner
from repro.scenarios.spec import derive_seed
from repro.topology.generators import watts_strogatz_pcn

NodeId = Hashable

#: The paper's omega sweep (figure 9's x axis).
DEFAULT_OMEGAS: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5)

#: Node counts and default method line-ups of the comparison scales.  The
#: node counts match the figure-8 pipeline's; the method pairs follow the
#: paper: optimum-vs-model while the optimum is tractable, model variants
#: above that.
PLACEMENT_SCALES: Dict[str, Dict[str, object]] = {
    "small": {"nodes": 60, "methods": ("exact", "greedy")},
    "medium": {"nodes": 200, "methods": ("greedy", "greedy-descent")},
    "large": {"nodes": 600, "methods": ("greedy", "greedy-descent")},
    "paper": {"nodes": 3000, "methods": ("greedy", "greedy-det")},
    # The beyond-paper tier: only the deterministic double-greedy stays
    # tractable at this size; shrink with --nodes for machine-sized smokes.
    "xl": {"nodes": 100000, "methods": ("greedy-det",)},
}

#: Methods the pipeline understands (superset of the solver facade's: the
#: deterministic double-greedy variant and the descent ablation are
#: first-class sweep dimensions here).
PLACE_METHODS = ("exact", "milp", "brute", "greedy", "greedy-det", "greedy-descent")

#: Result-row schema of this pipeline (independent of the scenario rows').
PLACE_SCHEMA_VERSION = 1


@dataclass
class PlacementCompareSpec:
    """One scale's placement sweep: the grid is methods x omegas x seeds.

    Attributes:
        scale: Scale name (see :data:`PLACEMENT_SCALES`).
        nodes: Topology node count.
        methods: Placement methods to compare (see :data:`PLACE_METHODS`);
            the first one is the reference the gap columns are computed
            against.
        omegas: Cost-weight sweep values.
        seeds: Base seeds; each seed generates an independent topology.
        backend: Execution backend of every solve
            (``"python"`` | ``"numpy"``).
        hop_cache_dir: Directory of the persistent hop-matrix cache shared
            by shard workers (``None`` disables it).  The cache is
            transparent -- probed hop counts are identical with or without
            it -- so the field stays out of the resume fingerprint.
    """

    scale: str
    nodes: int
    methods: List[str] = field(default_factory=lambda: ["exact", "greedy"])
    omegas: List[float] = field(default_factory=lambda: list(DEFAULT_OMEGAS))
    seeds: List[int] = field(default_factory=lambda: [1])
    backend: str = "numpy"
    hop_cache_dir: Optional[str] = None

    @property
    def name(self) -> str:
        """Results-file stem of this sweep."""
        return f"place-{self.scale}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict (JSON-safe) representation."""
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable hash of everything that parameterizes one run.

        Methods, omegas and seeds expand the grid (they live in each run's
        key) and stay out of the hash, mirroring the scenario runner's
        fingerprint contract: changing them must not invalidate completed
        runs, while changing the topology or backend must.
        """
        material = {"scale": self.scale, "nodes": self.nodes, "backend": self.backend}
        digest = hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()
        return digest[:12]

    def expand_runs(self) -> List[Tuple[int, Dict[str, object]]]:
        """All (seed, overrides) pairs of the seeds x methods x omegas grid."""
        return [
            (seed, {"method": method, "omega": omega})
            for seed in self.seeds
            for method in self.methods
            for omega in self.omegas
        ]


def build_place_spec(
    scale: str,
    methods: Optional[Sequence[str]] = None,
    omegas: Optional[Sequence[float]] = None,
    seeds: Optional[Sequence[int]] = None,
    backend: str = "numpy",
    nodes: Optional[int] = None,
) -> PlacementCompareSpec:
    """The figure-9 sweep at one scale, with optional dimension overrides."""
    try:
        params = PLACEMENT_SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown placement scale {scale!r}; available: "
            f"{', '.join(sorted(PLACEMENT_SCALES))}"
        ) from None
    method_list = list(methods) if methods else list(params["methods"])
    unknown = [method for method in method_list if method not in PLACE_METHODS]
    if unknown:
        raise ValueError(
            f"unknown placement method(s) {', '.join(unknown)}; "
            f"expected a subset of {PLACE_METHODS}"
        )
    return PlacementCompareSpec(
        scale=scale,
        nodes=int(params["nodes"]) if nodes is None else int(nodes),
        methods=method_list,
        omegas=[float(omega) for omega in omegas] if omegas else list(DEFAULT_OMEGAS),
        seeds=[int(seed) for seed in seeds] if seeds else [1],
        backend=backend,
    )


def build_place_network(spec_dict: Dict[str, object], seed: int):
    """The sweep's topology for one seed (same family as the figure-8 runs)."""
    nodes = int(spec_dict["nodes"])
    return watts_strogatz_pcn(
        nodes,
        nearest_neighbors=8,
        rewire_probability=0.25,
        uniform_channel_size=200.0,
        candidate_fraction=0.15 if nodes <= 150 else 0.08,
        seed=derive_seed(seed, "place-topology"),
    )


def execute_place_run(
    task: Tuple[Dict[str, object], int, Dict[str, object]],
) -> Dict[str, object]:
    """Execute one (spec dict, seed, {method, omega}) shard and return its row.

    Module-level so it pickles for worker processes.
    """
    # Imported here so worker processes pay the import once per process and
    # the module stays importable without pulling the whole solver stack in.
    from repro.placement.solver import build_problem, solve_placement
    from repro.placement.supermodular import greedy_descent_placement
    from repro.scenarios.runner import run_key

    spec_dict, seed, overrides = task
    spec = PlacementCompareSpec(**spec_dict)
    method = str(overrides["method"])
    omega = float(overrides["omega"])

    network = build_place_network(spec_dict, seed)
    hops = None
    hop_cache = "off"
    if spec.hop_cache_dir:
        # Shards sharing a seed probe the identical hop-count matrix; the
        # persistent store lets (method x omega) siblings skip the probe.
        from repro.topology.path_store import HopMatrixStore

        store = HopMatrixStore(spec.hop_cache_dir, network.topology_fingerprint())
        hops = store.load()
        hop_cache = "hit" if hops is not None else "miss"
        if hops is None:
            candidates = network.candidates()
            node_order, matrix = network.hop_count_rows(candidates)
            store.save(node_order, candidates, matrix)
            from repro.topology.path_store import hop_dicts_from_rows

            hops = hop_dicts_from_rows(node_order, candidates, matrix)
    problem = build_problem(network, omega=omega, backend=spec.backend, hops=hops)
    solver_seed = derive_seed(seed, "place-solver")
    started = time.perf_counter()
    if method == "greedy-descent":
        plan = greedy_descent_placement(problem)
    elif method == "greedy-det":
        plan = solve_placement(
            problem, method="greedy", seed=solver_seed, deterministic_greedy=True
        )
    else:
        plan = solve_placement(problem, method=method, seed=solver_seed)
    solve_seconds = time.perf_counter() - started

    return {
        "schema_version": PLACE_SCHEMA_VERSION,
        "run_key": run_key(spec.name, seed, overrides, spec.fingerprint()),
        "scale": spec.scale,
        "seed": seed,
        "method": method,
        "omega": omega,
        "backend": spec.backend,
        "nodes": spec.nodes,
        "candidate_count": problem.candidate_count,
        "client_count": problem.client_count,
        "hub_count": plan.hub_count,
        "management_cost": round(plan.management_cost, 6),
        "synchronization_cost": round(plan.synchronization_cost, 6),
        "balance_cost": round(plan.balance_cost, 6),
        "solve_seconds": round(solve_seconds, 4),
        "hop_cache": hop_cache,
    }


class PlacementCompareRunner(JsonlGridRunner):
    """Runs a placement sweep's full grid over worker processes, resumably."""

    schema_version = PLACE_SCHEMA_VERSION

    def __init__(
        self,
        spec: PlacementCompareSpec,
        results_dir: str = os.path.join("results", "place"),
        workers: int = 1,
        **resilience,
    ) -> None:
        super().__init__(results_dir=results_dir, workers=workers, **resilience)
        self.spec = spec

    @property
    def results_name(self) -> str:
        """The sweep's name (stem of the results file)."""
        return self.spec.name

    def expected_keys(self) -> List[str]:
        """Run keys of the full methods x omegas x seeds grid, in grid order."""
        from repro.scenarios.runner import run_key

        fingerprint = self.spec.fingerprint()
        return [
            run_key(self.spec.name, seed, overrides, fingerprint)
            for seed, overrides in self.spec.expand_runs()
        ]

    def pending_tasks(self) -> List[Tuple[Dict[str, object], int, Dict[str, object]]]:
        """Grid entries not yet present in the results file, in grid order."""
        from repro.scenarios.runner import run_key

        done = self.completed_keys()
        spec_dict = self.spec.to_dict()
        fingerprint = self.spec.fingerprint()
        return [
            (spec_dict, seed, overrides)
            for seed, overrides in self.spec.expand_runs()
            if run_key(self.spec.name, seed, overrides, fingerprint) not in done
        ]

    def executor(self):
        """The module-level placement task function."""
        return execute_place_run


def fig9_table(rows: Sequence[Dict[str, object]], methods: Sequence[str]) -> str:
    """A figure-9-shaped table: one line per omega, one column group per method.

    Per method: mean balance cost and mean hub count over the seeds.  Every
    non-reference method also gets a ``gap%`` column against the first
    method in ``methods`` (at small scale that is the optimum, reproducing
    figure 9(a)'s model-vs-optimal comparison).
    """
    by_cell: Dict[Tuple[float, str], List[Dict[str, object]]] = {}
    omegas: List[float] = []
    for row in rows:
        omega = float(row["omega"])
        if omega not in omegas:
            omegas.append(omega)
        by_cell.setdefault((omega, str(row["method"])), []).append(row)
    omegas.sort()

    def mean(cell_rows: List[Dict[str, object]], field_name: str) -> float:
        return sum(float(r[field_name]) for r in cell_rows) / len(cell_rows)

    reference = methods[0] if methods else None
    table_rows: List[Dict[str, object]] = []
    for omega in omegas:
        line: Dict[str, object] = {"omega": omega}
        reference_cost: Optional[float] = None
        for method in methods:
            cell = by_cell.get((omega, method))
            if not cell:
                continue
            cost = mean(cell, "balance_cost")
            line[f"{method}_cost"] = round(cost, 4)
            line[f"{method}_hubs"] = round(mean(cell, "hub_count"), 2)
            if method == reference:
                reference_cost = cost
            elif reference_cost is not None:
                if reference_cost > 0:
                    gap = 100.0 * (cost - reference_cost) / reference_cost
                else:
                    # A zero-cost reference: any non-zero model cost is an
                    # infinite relative gap, shown explicitly rather than
                    # silently dropping the column.
                    gap = 0.0 if cost == 0 else float("inf")
                line[f"{method}_gap%"] = round(gap, 2) if gap != float("inf") else gap
        table_rows.append(line)
    return format_table(table_rows)
