"""Optimal client-to-hub assignment (Lemma 1 of the paper).

Given a fixed placement ``x``, the balance cost separates per client: client
``m`` should be assigned to the placed hub ``n`` that minimizes
``omega * sum_{l placed} delta[n][l] + zeta[m][n]``.  This module computes
that assignment and, for a given placement, the resulting plan and cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence

from repro.placement.problem import PlacementPlan, PlacementProblem

NodeId = Hashable


def assignment_key(problem: PlacementProblem, hubs: Sequence[NodeId], hub: NodeId) -> float:
    """The per-client-independent part of Lemma 1's assignment cost for ``hub``."""
    return problem.omega * sum(problem.costs.delta[hub][l] for l in hubs)


def optimal_assignment(
    problem: PlacementProblem,
    hubs: Iterable[NodeId],
) -> Dict[NodeId, NodeId]:
    """Assign every client to its Lemma-1 optimal hub among ``hubs``.

    Ties are broken deterministically by the candidate ordering of the cost
    model so that repeated runs produce identical plans.
    """
    hub_list = [hub for hub in problem.candidates if hub in set(hubs)]
    if not hub_list:
        raise ValueError("cannot assign clients: the placement is empty")
    sync_part = {hub: assignment_key(problem, hub_list, hub) for hub in hub_list}
    assignment: Dict[NodeId, NodeId] = {}
    for client in problem.clients:
        zeta_row = problem.costs.zeta[client]
        best_hub = min(hub_list, key=lambda hub: sync_part[hub] + zeta_row[hub])
        assignment[client] = best_hub
    return assignment


def plan_for_placement(
    problem: PlacementProblem,
    hubs: Iterable[NodeId],
    method: str = "lemma1",
) -> PlacementPlan:
    """The full plan (with costs) induced by a placement via Lemma 1."""
    hub_set = set(hubs)
    assignment = optimal_assignment(problem, hub_set)
    return problem.make_plan(hub_set, assignment, method=method)


def placement_cost(problem: PlacementProblem, hubs: Iterable[NodeId]) -> float:
    """Balance cost of a placement under its optimal assignment.

    This is the set function ``f(X)`` of equation (14); it is the objective
    both exact and approximate placement solvers optimize over subsets of the
    candidate set.  An empty placement is infeasible and maps to ``+inf``.
    """
    hub_set = set(hubs)
    if not hub_set:
        return float("inf")
    assignment = optimal_assignment(problem, hub_set)
    return problem.balance_cost(hub_set, assignment)


def is_assignment_optimal(
    problem: PlacementProblem,
    plan: PlacementPlan,
    tolerance: float = 1e-9,
) -> bool:
    """Whether no single client could switch hubs and lower the balance cost.

    Used by tests to verify Lemma 1: for every client, its assigned hub must
    achieve the minimum of ``omega * sum_l delta[n][l] + zeta[m][n]`` over
    the placed hubs.
    """
    hub_list = [hub for hub in problem.candidates if hub in plan.hubs]
    sync_part = {hub: assignment_key(problem, hub_list, hub) for hub in hub_list}
    for client, assigned in plan.assignment.items():
        zeta_row = problem.costs.zeta[client]
        current = sync_part[assigned] + zeta_row[assigned]
        best = min(sync_part[hub] + zeta_row[hub] for hub in hub_list)
        if current > best + tolerance:
            return False
    return True
