"""Optimal client-to-hub assignment (Lemma 1 of the paper).

Given a fixed placement ``x``, the balance cost separates per client: client
``m`` should be assigned to the placed hub ``n`` that minimizes
``omega * sum_{l placed} delta[n][l] + zeta[m][n]``.  This module computes
that assignment and, for a given placement, the resulting plan and cost.

Both execution backends live here.  The scalar path walks the cost model's
nested dicts; the vectorized path (``backend="numpy"``) evaluates the same
quantities on the :class:`~repro.placement.costs.CostArrays` mirror.  The
vectorized kernels are constructed to be *decision-identical* to the scalar
reference: synchronization parts accumulate hub-by-hub in candidate order
(the scalar ``sum`` order), the per-client score is the same two-term
addition, and ``argmin`` breaks ties by the first (candidate-order) minimum
exactly as ``min`` over the scalar hub list does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.placement.problem import PlacementPlan, PlacementProblem

NodeId = Hashable


def assignment_key(problem: PlacementProblem, hubs: Sequence[NodeId], hub: NodeId) -> float:
    """The per-client-independent part of Lemma 1's assignment cost for ``hub``."""
    return problem.omega * sum(problem.costs.delta[hub][l] for l in hubs)


def hub_sync_parts(problem: PlacementProblem, hub_rows: np.ndarray) -> np.ndarray:
    """``omega * sum_l delta[n][l]`` for every hub row, vectorized.

    Accumulates the delta columns hub-by-hub in ``hub_rows`` order (candidate
    order), reproducing the scalar ``sum`` over the hub list bit-for-bit.
    """
    delta = problem.arrays.delta
    acc = np.zeros(len(hub_rows))
    for l in hub_rows:
        acc += delta[hub_rows, l]
    return problem.omega * acc


def assignment_rows(problem: PlacementProblem, hub_rows: np.ndarray) -> np.ndarray:
    """Per-client index into ``hub_rows`` of each client's Lemma-1 hub."""
    arrays = problem.arrays
    scores = arrays.zeta[:, hub_rows] + hub_sync_parts(problem, hub_rows)[None, :]
    return np.argmin(scores, axis=1)


def _candidate_hub_list(problem: PlacementProblem, hubs: Iterable[NodeId]) -> list:
    """``hubs`` filtered to candidates, in candidate order; never empty.

    Raises the subsystem's canonical error when the placement contains no
    usable hub (empty, or disjoint from the candidate set).
    """
    hub_set = set(hubs)
    hub_list = [hub for hub in problem.candidates if hub in hub_set]
    if not hub_list:
        raise ValueError("cannot assign clients: the placement is empty")
    return hub_list


def _scalar_assignment(problem: PlacementProblem, hub_list: Sequence[NodeId]) -> Dict[NodeId, NodeId]:
    """The Lemma-1 assignment over a prepared hub list, reference arithmetic."""
    sync_part = {hub: assignment_key(problem, hub_list, hub) for hub in hub_list}
    assignment: Dict[NodeId, NodeId] = {}
    for client in problem.clients:
        zeta_row = problem.costs.zeta[client]
        assignment[client] = min(hub_list, key=lambda hub: sync_part[hub] + zeta_row[hub])
    return assignment


def optimal_assignment(
    problem: PlacementProblem,
    hubs: Iterable[NodeId],
) -> Dict[NodeId, NodeId]:
    """Assign every client to its Lemma-1 optimal hub among ``hubs``.

    Ties are broken deterministically by the candidate ordering of the cost
    model so that repeated runs produce identical plans.  Hubs outside the
    candidate set are ignored (as the scalar reference always did); a
    placement with no usable hub raises ``ValueError``.
    """
    hub_list = _candidate_hub_list(problem, hubs)
    if problem.backend == "numpy":
        arrays = problem.arrays
        hub_rows = arrays.candidate_rows(hub_list)
        choices = assignment_rows(problem, hub_rows)
        return {
            client: hub_list[choice]
            for client, choice in zip(arrays.clients, choices)
        }
    return _scalar_assignment(problem, hub_list)


def plan_for_placement(
    problem: PlacementProblem,
    hubs: Iterable[NodeId],
    method: str = "lemma1",
) -> PlacementPlan:
    """The full plan (with costs) induced by a placement via Lemma 1."""
    hub_set = set(hubs)
    assignment = optimal_assignment(problem, hub_set)
    return problem.make_plan(hub_set, assignment, method=method)


def placement_cost(
    problem: PlacementProblem,
    hubs: Iterable[NodeId],
    backend: Optional[str] = None,
) -> float:
    """Balance cost of a placement under its optimal assignment.

    This is the set function ``f(X)`` of equation (14); it is the objective
    both exact and approximate placement solvers optimize over subsets of the
    candidate set.  An empty placement is infeasible and maps to ``+inf``.

    Args:
        problem: The placement instance.
        hubs: The placement ``X`` to evaluate.
        backend: Evaluation backend override.  ``None`` follows the problem's
            backend; the exact enumerative solvers pass ``"python"`` so their
            optimum selection among floating-point-tied subsets is identical
            whatever the problem's backend (see
            :mod:`repro.placement.solver`).
    """
    hub_set = set(hubs)
    if not hub_set:
        return float("inf")
    hub_list = _candidate_hub_list(problem, hub_set)
    if (backend or problem.backend) == "numpy":
        return vectorized_placement_cost(problem, problem.arrays.candidate_rows(hub_list))
    assignment = _scalar_assignment(problem, hub_list)
    # hub_list, not the raw set: hubs outside the candidate set are ignored
    # consistently with the assignment (and with the vectorized branch).
    return problem.costs.balance_cost(hub_list, assignment, problem.omega)


def vectorized_placement_cost(problem: PlacementProblem, hub_rows: np.ndarray) -> float:
    """``f(X)`` evaluated on the arrays for a hub-row index vector.

    Uses the separable form ``f(X) = sum_m min_n (zeta[m][n] + omega *
    sum_l delta[n][l]) + omega * sum_{n,l in X} epsilon[n][l]``, which equals
    the scalar ``C_M + omega * C_S`` regrouped; the two agree to well below
    the suite's 1e-9 tolerance.
    """
    arrays = problem.arrays
    scores = arrays.zeta[:, hub_rows] + hub_sync_parts(problem, hub_rows)[None, :]
    per_client = scores.min(axis=1) if scores.size else np.zeros(arrays.client_count)
    epsilon_total = float(arrays.epsilon[np.ix_(hub_rows, hub_rows)].sum())
    return float(per_client.sum()) + problem.omega * epsilon_total


def is_assignment_optimal(
    problem: PlacementProblem,
    plan: PlacementPlan,
    tolerance: float = 1e-9,
) -> bool:
    """Whether no single client could switch hubs and lower the balance cost.

    Used by tests to verify Lemma 1: for every client, its assigned hub must
    achieve the minimum of ``omega * sum_l delta[n][l] + zeta[m][n]`` over
    the placed hubs.
    """
    hub_list = [hub for hub in problem.candidates if hub in plan.hubs]
    sync_part = {hub: assignment_key(problem, hub_list, hub) for hub in hub_list}
    for client, assigned in plan.assignment.items():
        zeta_row = problem.costs.zeta[client]
        current = sync_part[assigned] + zeta_row[assigned]
        best = min(sync_part[hub] + zeta_row[hub] for hub in hub_list)
        if current > best + tolerance:
            return False
    return True
