"""Implementation of the ``python -m repro data`` subcommands.

``fetch`` stages datasets into a working directory, ``clean`` turns a raw
payment-trace CSV into the canonical fingerprinted NPZ, ``info`` prints
summary statistics for snapshots and traces.  Everything works offline
against the bundled fixtures; real datasets are user-supplied (licensing
notes and pointers live in ``docs/datasets.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
from typing import Dict

from repro.data.fixtures import fixture_path, list_fixtures
from repro.data.lightning import snapshot_info
from repro.data.ripple import clean_trace, trace_info
from repro.obs.log import get_logger

log = get_logger("repro.data")


def add_data_arguments(sub: argparse.ArgumentParser) -> None:
    """Attach the ``fetch``/``clean``/``info`` sub-subcommands."""
    actions = sub.add_subparsers(dest="data_command", required=True)

    fetch = actions.add_parser(
        "fetch",
        help="stage the bundled fixture datasets into a working directory",
    )
    fetch.add_argument(
        "--dest",
        default="data",
        help="destination directory (default ./data)",
    )
    fetch.add_argument(
        "--force",
        action="store_true",
        help="overwrite files that already exist in the destination",
    )

    clean = actions.add_parser(
        "clean",
        help="clean a raw payment-trace CSV into a canonical fingerprinted NPZ",
    )
    clean.add_argument(
        "source",
        nargs="?",
        default=None,
        help="raw trace CSV (default: the bundled ripple_small.csv fixture)",
    )
    clean.add_argument(
        "--output",
        default=None,
        help="canonical NPZ path (default: <source>.npz next to the source)",
    )

    info = actions.add_parser(
        "info",
        help="print summary statistics for snapshot/trace files",
    )
    info.add_argument(
        "paths",
        nargs="*",
        help="snapshot (.json) or trace (.csv/.npz) files; default: the bundled fixtures",
    )
    info.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print machine-readable JSON instead of text lines",
    )


def _command_fetch(args: argparse.Namespace) -> int:
    os.makedirs(args.dest, exist_ok=True)
    staged = 0
    for name in list_fixtures():
        target = os.path.join(args.dest, name)
        if os.path.exists(target) and not args.force:
            log.info(f"  kept {target} (exists; use --force to overwrite)")
            continue
        shutil.copyfile(fixture_path(name), target)
        log.info(f"  staged {target}")
        staged += 1
    log.info(
        f"fetch: staged {staged} bundled fixture file(s) into {args.dest}; "
        f"see docs/datasets.md for obtaining full Lightning/Ripple datasets",
        staged=staged,
        dest=args.dest,
    )
    return 0


def _command_clean(args: argparse.Namespace) -> int:
    source = args.source or fixture_path("ripple_small.csv")
    output = args.output
    if output is None:
        base, _ = os.path.splitext(source)
        output = base + ".npz"
    trace, report, _ = clean_trace(source, output)
    log.info(
        f"clean: {report.kept}/{report.rows_total} row(s) kept "
        f"(malformed {report.dropped_malformed}, duplicate {report.dropped_duplicate_id}, "
        f"nonpositive {report.dropped_nonpositive}, self-payment {report.dropped_self_payment}, "
        f"reordered {report.reordered})",
        **report.as_dict(),
    )
    log.info(
        f"wrote {output} ({trace.count} payments, {len(trace.accounts)} accounts, "
        f"{trace.duration:.1f}s) fingerprint {trace.fingerprint}",
        path=output,
        fingerprint=trace.fingerprint,
    )
    return 0


def _info_for(path: str) -> Dict[str, object]:
    if path.endswith(".json"):
        return snapshot_info(path)
    return trace_info(path)


def _command_info(args: argparse.Namespace) -> int:
    paths = args.paths or [fixture_path("lightning_small.json"), fixture_path("ripple_small.csv")]
    reports = [_info_for(path) for path in paths]
    if args.json_output:
        # Machine-readable output owns stdout (parseable under --log-json).
        print(json.dumps(reports, indent=2, sort_keys=True, default=str))
        return 0
    for report in reports:
        log.info(f"{report['format']}: {report['path']}")
        for key in sorted(report):
            if key in ("path", "format"):
                continue
            log.info(f"  {key}: {report[key]}")
    return 0


def run_data_command(args: argparse.Namespace) -> int:
    """Dispatch ``python -m repro data <fetch|clean|info>``."""
    if args.data_command == "fetch":
        return _command_fetch(args)
    if args.data_command == "clean":
        return _command_clean(args)
    return _command_info(args)
