"""Registries of topology and workload source providers.

The scenario layer used to hard-code its inputs: a closed dict of synthetic
topology generators and one Poisson workload generator baked into
``WorkloadSpec``.  This module replaces both with open registries.  A
*source* is a named builder:

* a **topology source** turns ``(seed, params)`` into a funded
  :class:`~repro.topology.network.PCNetwork`;
* a **workload source** turns ``(network, seed, params)`` into a
  transaction workload (materialized or streaming).

Register new sources with the :func:`topology_source` /
:func:`workload_source` decorators; scenario specs dispatch by ``kind``
(``topology.kind`` for the legacy synthetic spelling, or the explicit
``topology.source`` / ``workload.source`` descriptor), and every source
parameter is reachable from grid overrides, e.g.
``workload.source.time_scale``.

Builder calling conventions (enforced by the spec layer, not here):

* topology builders are called as ``builder(**params)`` with ``seed=<int>``
  added when the source is registered ``seeded=True`` and
  ``channel_scale=<float>`` added when registered ``channel_scale=True``;
* workload builders are called as ``builder(network, seed, params, spec)``
  where ``spec`` is the owning
  :class:`~repro.scenarios.spec.WorkloadSpec` (its fields supply defaults
  such as the target duration and value scale).

The synthetic generators register themselves below; the real-data sources
(``lightning-snapshot``, ``ripple-trace``) register from their own modules,
imported at the bottom of this file so that importing the registry is
enough to see every built-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.topology.datasets import ChannelSizeDistribution
from repro.topology.generators import (
    grid_pcn,
    multi_star_pcn,
    random_pcn,
    scale_free_pcn,
    star_pcn,
    watts_strogatz_pcn,
)

__all__ = [
    "SourceInfo",
    "get_topology_source",
    "get_workload_source",
    "list_topology_sources",
    "list_workload_sources",
    "topology_source",
    "workload_source",
]


@dataclass(frozen=True)
class SourceInfo:
    """One registered source provider.

    Attributes:
        kind: Registry name (the ``kind`` scenario specs dispatch on).
        builder: The builder callable (see the module docstring for the
            calling convention of each registry).
        description: One-line description shown by ``python -m repro list``.
        seeded: Topology only -- whether the builder takes a ``seed`` kwarg
            (deterministic loaders such as snapshot parsing do not).
        channel_scale: Whether the builder understands the spec's
            ``channel_scale`` knob (the paper's channel-size sweeps).
            Specs with a non-trivial ``channel_scale`` on a source that
            does not support it are rejected instead of silently ignored.
        synthetic: Whether the source generates its data (synthetic
            generators) or loads external data (trace/snapshot loaders).
            Data-backed sources spelled through the legacy ``kind`` field
            raise a deprecation warning pointing at ``source:``.
    """

    kind: str
    builder: Callable
    description: str = ""
    seeded: bool = True
    channel_scale: bool = False
    synthetic: bool = False


TOPOLOGY_SOURCES: Dict[str, SourceInfo] = {}
WORKLOAD_SOURCES: Dict[str, SourceInfo] = {}


def _register(
    registry: Dict[str, SourceInfo], info: SourceInfo, family: str, replace: bool
) -> None:
    if not replace and info.kind in registry:
        raise ValueError(
            f"{family} source {info.kind!r} is already registered; "
            f"pass replace=True to override it"
        )
    registry[info.kind] = info


def topology_source(
    kind: str,
    *,
    description: str = "",
    seeded: bool = True,
    channel_scale: bool = False,
    synthetic: bool = False,
    replace: bool = False,
) -> Callable[[Callable], Callable]:
    """Class/function decorator registering a topology source builder."""

    def decorator(builder: Callable) -> Callable:
        _register(
            TOPOLOGY_SOURCES,
            SourceInfo(
                kind=kind,
                builder=builder,
                description=description,
                seeded=seeded,
                channel_scale=channel_scale,
                synthetic=synthetic,
            ),
            "topology",
            replace,
        )
        return builder

    return decorator


def workload_source(
    kind: str,
    *,
    description: str = "",
    synthetic: bool = False,
    replace: bool = False,
) -> Callable[[Callable], Callable]:
    """Class/function decorator registering a workload source builder."""

    def decorator(builder: Callable) -> Callable:
        _register(
            WORKLOAD_SOURCES,
            SourceInfo(
                kind=kind,
                builder=builder,
                description=description,
                seeded=True,
                channel_scale=False,
                synthetic=synthetic,
            ),
            "workload",
            replace,
        )
        return builder

    return decorator


def get_topology_source(kind: str) -> SourceInfo:
    """The registered topology source, or a ``ValueError`` listing options."""
    try:
        return TOPOLOGY_SOURCES[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {kind!r}; expected one of "
            f"{sorted(TOPOLOGY_SOURCES)}"
        ) from None


def get_workload_source(kind: str) -> SourceInfo:
    """The registered workload source, or a ``ValueError`` listing options."""
    try:
        return WORKLOAD_SOURCES[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload source {kind!r}; expected one of "
            f"{sorted(WORKLOAD_SOURCES)}"
        ) from None


def list_topology_sources() -> List[SourceInfo]:
    """All registered topology sources, sorted by kind."""
    return [TOPOLOGY_SOURCES[kind] for kind in sorted(TOPOLOGY_SOURCES)]


def list_workload_sources() -> List[SourceInfo]:
    """All registered workload sources, sorted by kind."""
    return [WORKLOAD_SOURCES[kind] for kind in sorted(WORKLOAD_SOURCES)]


# ---------------------------------------------------------------------- #
# built-in synthetic topology sources
# ---------------------------------------------------------------------- #
def _with_channel_sizes(params: Dict[str, object], channel_scale) -> Dict[str, object]:
    """Fold the spec-level ``channel_scale`` knob into generator kwargs.

    Mirrors the pre-registry dispatch exactly: a non-``None`` scale becomes
    the paper's heavy-tailed :class:`ChannelSizeDistribution` unless the
    caller already supplied ``channel_sizes`` explicitly.
    """
    if channel_scale is not None:
        params.setdefault("channel_sizes", ChannelSizeDistribution(scale=float(channel_scale)))
    return params


@topology_source(
    "watts-strogatz",
    description="funded Watts-Strogatz small world (the paper's evaluation topology)",
    channel_scale=True,
    synthetic=True,
)
def _watts_strogatz_source(channel_scale=None, **params):
    return watts_strogatz_pcn(**_with_channel_sizes(params, channel_scale))


@topology_source(
    "scale-free",
    description="Barabasi-Albert scale-free PCN (ROLL-style hub structure)",
    channel_scale=True,
    synthetic=True,
)
def _scale_free_source(channel_scale=None, **params):
    return scale_free_pcn(**_with_channel_sizes(params, channel_scale))


@topology_source(
    "random",
    description="connected Erdos-Renyi PCN (fuzz/property testing)",
    channel_scale=True,
    synthetic=True,
)
def _random_source(channel_scale=None, **params):
    return random_pcn(**_with_channel_sizes(params, channel_scale))


@topology_source(
    "grid",
    description="2-D grid PCN with uniform channels (hand-checkable tests)",
    synthetic=True,
)
def _grid_source(**params):
    return grid_pcn(**params)


@topology_source(
    "star",
    description="single-PCH star of figure 2(a)",
    seeded=False,
    synthetic=True,
)
def _star_source(**params):
    return star_pcn(**params)


@topology_source(
    "multi-star",
    description="multi-PCH star-of-stars of figure 2(b)",
    seeded=False,
    synthetic=True,
)
def _multi_star_source(**params):
    return multi_star_pcn(**params)


# ---------------------------------------------------------------------- #
# built-in synthetic workload source
# ---------------------------------------------------------------------- #
@workload_source(
    "poisson",
    description="synthetic Poisson arrivals, heavy-tailed values, skewed pairs",
    synthetic=True,
)
def _poisson_source(network, seed, params, spec):
    """The default generator, parameterized by the spec's own fields.

    ``params`` (from an explicit ``workload.source`` descriptor) override
    the spec fields of the same name, so sources and grid overrides
    compose: ``workload.source.arrival_rate`` sweeps work like
    ``workload.arrival_rate``.
    """
    return spec.with_poisson_params(params).build_poisson(network, seed)


# Data-backed sources register from their own modules; importing them last
# keeps the decorator available to them without a circular import.
from repro.data import lightning as _lightning  # noqa: E402,F401
from repro.data import ripple as _ripple  # noqa: E402,F401
