"""Bundled fixture datasets for offline, reproducible real-trace runs.

The real datasets the paper draws on (a Lightning Network channel-graph
snapshot, a Ripple payment trace) are not redistributable, so this package
ships small, synthetic-but-realistically-shaped stand-ins:

* ``lightning_small.json`` -- a ~45-node channel graph in LN
  ``describegraph`` shape, with heavy-tailed capacities, fee policies, a
  parallel channel and a disconnected component (so the loader's
  aggregation and largest-component extraction are exercised).
* ``ripple_small.csv`` -- a raw payment trace with the dirt real traces
  carry: malformed rows, duplicate payment ids, zero/negative amounts,
  self-payments and out-of-order timestamps.

See ``docs/datasets.md`` for the formats and for pointers to the real
datasets these stand in for.
"""

from __future__ import annotations

import os
from typing import List

__all__ = ["fixture_path", "list_fixtures"]

_FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))


def fixture_path(name: str) -> str:
    """Absolute path of a bundled fixture file, with a helpful error."""
    path = os.path.join(_FIXTURE_DIR, name)
    if not os.path.isfile(path):
        raise FileNotFoundError(
            f"no bundled fixture {name!r}; available: {', '.join(list_fixtures())}"
        )
    return path


def list_fixtures() -> List[str]:
    """Names of every bundled fixture data file."""
    return sorted(
        entry
        for entry in os.listdir(_FIXTURE_DIR)
        if not entry.endswith(".py") and not entry.startswith("__")
    )
