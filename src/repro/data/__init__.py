"""Real-trace data layer: pluggable topology & workload source providers.

The paper's evaluation runs on synthetic Watts-Strogatz graphs and Poisson
workloads; this package opens the seam for real data.  It has three parts:

* :mod:`repro.data.sources` -- the provider registries behind the scenario
  layer's ``topology:`` / ``workload:`` fields.  Every synthetic generator
  and every real loader registers under a ``kind`` name; scenario specs
  dispatch through the registry instead of hard-coded builder tables, so
  new sources plug in with a decorator.
* :mod:`repro.data.lightning` -- a Lightning-Network-style channel-graph
  snapshot loader (JSON/CSV -> :class:`~repro.topology.network.PCNetwork`),
  with capacity/fee normalization, largest-connected-component extraction
  and hub-preserving node capping.
* :mod:`repro.data.ripple` -- a Ripple-style payment-trace pipeline: raw
  CSV cleaning into a canonical, content-fingerprinted NPZ plus a chunked
  streaming replay that feeds the experiment runner's epoch-batched
  arrival drain without materializing the full trace.

Small fixture datasets are bundled under ``repro/data/fixtures`` so the
``real-trace`` scenario and the ``python -m repro data`` CLI work offline.
"""

from repro.data.sources import (
    SourceInfo,
    get_topology_source,
    get_workload_source,
    list_topology_sources,
    list_workload_sources,
    topology_source,
    workload_source,
)

__all__ = [
    "SourceInfo",
    "get_topology_source",
    "get_workload_source",
    "list_topology_sources",
    "list_workload_sources",
    "topology_source",
    "workload_source",
]
