"""Ripple-style payment-trace pipeline: clean, canonicalize, replay.

Three stages, mirroring how real trace studies are run:

1. **Clean** (:func:`clean_rows` / :func:`clean_trace`): raw CSV rows are
   validated and filtered -- malformed rows, duplicate payment ids,
   zero/negative amounts and self-payments are dropped (each counted in a
   :class:`CleanReport`), out-of-order timestamps are stable-sorted, and
   times are normalized to start at zero.
2. **Canonicalize** (:func:`write_canonical` / :func:`read_canonical`): the
   cleaned trace becomes four aligned NumPy arrays (times, values, sender
   and recipient account indices) plus the account table, written as an
   ``.npz`` with *deterministic bytes* (fixed zip timestamps, sorted
   members) and a SHA-256 content fingerprint stored in a JSON sidecar --
   so re-running ``data clean`` on the same input yields byte-identical
   output, and runs can pin the exact trace they consumed.
3. **Replay** (:func:`trace_workload`): the canonical arrays are mapped
   onto a network (most-active account -> best-connected node by default)
   and turned into a :class:`~repro.simulator.workload.StreamingWorkload`
   that yields request chunks straight from the arrays -- the same
   chunked-array streaming idea as the PR 5 arrival-time backbone -- so the
   experiment runner's epoch-batched drain never sees the whole trace as
   Python objects.

Replay is deterministic for the default ``mapping="activity"``; the
``mapping="random"`` variant derives its permutation from the run seed via
:func:`~repro.scenarios.spec.derive_seed`, so it is reproducible per seed.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import zipfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.fixtures import fixture_path
from repro.data.sources import workload_source
from repro.simulator.workload import (
    StreamingWorkload,
    TransactionRequest,
    WorkloadConfig,
)
from repro.topology.network import PCNetwork

__all__ = [
    "DEFAULT_TRACE_FIXTURE",
    "CanonicalTrace",
    "CleanReport",
    "clean_rows",
    "clean_trace",
    "load_trace",
    "read_canonical",
    "trace_info",
    "trace_workload",
    "write_canonical",
]

DEFAULT_TRACE_FIXTURE = "ripple_small.csv"

#: Version tag mixed into the content fingerprint and sidecar metadata.
_CANONICAL_FORMAT = "repro-ripple-trace"
_CANONICAL_VERSION = 1

#: Accepted (case-insensitive) CSV header spellings, in priority order.
_COLUMN_ALIASES: Dict[str, Tuple[str, ...]] = {
    "payment_id": ("payment_id", "id", "tx", "tx_hash", "hash"),
    "timestamp": ("timestamp", "time", "executed_time", "close_time"),
    "sender": ("sender", "from", "source", "src"),
    "recipient": ("recipient", "receiver", "to", "target", "dst"),
    "value": ("value", "amount", "delivered_amount", "usd_amount"),
}

#: Default chunk size for streaming replay, matching the PR 5 arrival-time
#: streaming backbone's granularity.
_REPLAY_CHUNK = 1024


@dataclass
class CleanReport:
    """What the cleaner kept and why it dropped the rest."""

    rows_total: int = 0
    kept: int = 0
    dropped_malformed: int = 0
    dropped_duplicate_id: int = 0
    dropped_nonpositive: int = 0
    dropped_self_payment: int = 0
    reordered: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for sidecars, manifests and the CLI."""
        return {
            "rows_total": self.rows_total,
            "kept": self.kept,
            "dropped_malformed": self.dropped_malformed,
            "dropped_duplicate_id": self.dropped_duplicate_id,
            "dropped_nonpositive": self.dropped_nonpositive,
            "dropped_self_payment": self.dropped_self_payment,
            "reordered": self.reordered,
        }


@dataclass
class CanonicalTrace:
    """A cleaned trace as aligned arrays plus its content fingerprint.

    ``times`` are seconds from the first payment (sorted, starting at 0);
    ``senders``/``recipients`` index into ``accounts``.
    """

    times: np.ndarray
    values: np.ndarray
    senders: np.ndarray
    recipients: np.ndarray
    accounts: List[str]
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = _trace_fingerprint(self)

    @property
    def count(self) -> int:
        """Number of payments."""
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        """Span of the (zero-based) timestamps in seconds."""
        return float(self.times[-1]) if self.count else 0.0

    @property
    def total_value(self) -> float:
        """Sum of all payment values."""
        return float(self.values.sum()) if self.count else 0.0


def _trace_fingerprint(trace: CanonicalTrace) -> str:
    """SHA-256 over the canonical arrays and account table."""
    digest = hashlib.sha256()
    digest.update(f"{_CANONICAL_FORMAT}-v{_CANONICAL_VERSION}".encode())
    digest.update("\x00".join(trace.accounts).encode("utf-8"))
    for array in (trace.times, trace.values, trace.senders, trace.recipients):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _resolve_columns(fieldnames: Sequence[str]) -> Dict[str, Optional[str]]:
    lowered = {name.strip().lower(): name for name in fieldnames if name}
    columns: Dict[str, Optional[str]] = {}
    for canonical, aliases in _COLUMN_ALIASES.items():
        columns[canonical] = next(
            (lowered[alias] for alias in aliases if alias in lowered), None
        )
    missing = [
        canonical
        for canonical in ("timestamp", "sender", "recipient", "value")
        if columns[canonical] is None
    ]
    if missing:
        raise ValueError(
            f"trace CSV is missing required column(s) {missing}; "
            f"header was {list(fieldnames)}"
        )
    return columns


def _parse_number(raw: object) -> Optional[float]:
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    if not np.isfinite(value):
        return None
    return value


def clean_rows(
    rows: Iterable[Dict[str, object]], columns: Dict[str, Optional[str]]
) -> Tuple[CanonicalTrace, CleanReport]:
    """Clean parsed CSV rows into a :class:`CanonicalTrace` plus report.

    Cleaning semantics (in order, per row): rows with missing fields or
    non-numeric timestamp/value are *malformed*; a payment id already seen
    is a *duplicate* (first occurrence wins); values ``<= 0`` are
    *nonpositive*; ``sender == recipient`` is a *self payment*.  Surviving
    rows are stable-sorted by timestamp (so equal-time payments keep file
    order), and timestamps are shifted to start at zero.
    """
    report = CleanReport()
    seen_ids: set = set()
    times: List[float] = []
    values: List[float] = []
    senders: List[str] = []
    recipients: List[str] = []

    id_column = columns.get("payment_id")
    for row in rows:
        report.rows_total += 1
        timestamp = _parse_number(row.get(columns["timestamp"]))
        value = _parse_number(row.get(columns["value"]))
        sender = row.get(columns["sender"])
        recipient = row.get(columns["recipient"])
        sender = str(sender).strip() if sender is not None else ""
        recipient = str(recipient).strip() if recipient is not None else ""
        if timestamp is None or value is None or not sender or not recipient:
            report.dropped_malformed += 1
            continue
        if id_column is not None:
            payment_id = str(row.get(id_column) or "").strip()
            if payment_id:
                if payment_id in seen_ids:
                    report.dropped_duplicate_id += 1
                    continue
                seen_ids.add(payment_id)
        if value <= 0:
            report.dropped_nonpositive += 1
            continue
        if sender == recipient:
            report.dropped_self_payment += 1
            continue
        times.append(timestamp)
        values.append(value)
        senders.append(sender)
        recipients.append(recipient)

    report.kept = len(times)
    time_array = np.asarray(times, dtype=np.float64)
    order = np.argsort(time_array, kind="stable")
    report.reordered = int((order != np.arange(order.size)).sum())
    time_array = time_array[order]
    if time_array.size:
        time_array = time_array - time_array[0]
    value_array = np.asarray(values, dtype=np.float64)[order]

    accounts = sorted(set(senders) | set(recipients))
    index = {account: i for i, account in enumerate(accounts)}
    sender_array = np.asarray([index[s] for s in senders], dtype=np.int64)[order]
    recipient_array = np.asarray([index[r] for r in recipients], dtype=np.int64)[order]

    trace = CanonicalTrace(
        times=time_array,
        values=value_array,
        senders=sender_array,
        recipients=recipient_array,
        accounts=accounts,
    )
    return trace, report


def _read_raw_csv(path: str) -> Tuple[CanonicalTrace, CleanReport]:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"trace CSV {path!r} is empty")
        columns = _resolve_columns(reader.fieldnames)
        return clean_rows(reader, columns)


def _sidecar_path(path: str) -> str:
    base, _ = os.path.splitext(path)
    return base + ".json"


def write_canonical(
    trace: CanonicalTrace, path: str, report: Optional[CleanReport] = None
) -> str:
    """Write a canonical ``.npz`` (+ JSON sidecar) with deterministic bytes.

    ``np.savez`` embeds wall-clock timestamps in the zip members, so it is
    *not* byte-stable across runs; this writer fixes every member's
    timestamp to the zip epoch and orders members by name, making repeated
    cleans of the same input byte-identical -- which is what lets the
    sidecar fingerprint stand in for the file in run manifests.

    Returns the sidecar path.
    """
    arrays = {
        "times": np.ascontiguousarray(trace.times, dtype=np.float64),
        "values": np.ascontiguousarray(trace.values, dtype=np.float64),
        "senders": np.ascontiguousarray(trace.senders, dtype=np.int64),
        "recipients": np.ascontiguousarray(trace.recipients, dtype=np.int64),
        "accounts": np.asarray(trace.accounts),
    }
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(arrays):
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, arrays[name], version=(1, 0))
            member = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            member.compress_type = zipfile.ZIP_DEFLATED
            member.external_attr = 0o644 << 16
            archive.writestr(member, buffer.getvalue())

    sidecar = _sidecar_path(path)
    meta: Dict[str, object] = {
        "format": _CANONICAL_FORMAT,
        "version": _CANONICAL_VERSION,
        "fingerprint": trace.fingerprint,
        "payments": trace.count,
        "accounts": len(trace.accounts),
        "duration": trace.duration,
        "total_value": trace.total_value,
    }
    if report is not None:
        meta["cleaning"] = report.as_dict()
    with open(sidecar, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sidecar


def read_canonical(path: str) -> CanonicalTrace:
    """Load a canonical ``.npz``, verifying the sidecar fingerprint if present."""
    with np.load(path, allow_pickle=False) as archive:
        trace = CanonicalTrace(
            times=archive["times"],
            values=archive["values"],
            senders=archive["senders"],
            recipients=archive["recipients"],
            accounts=[str(account) for account in archive["accounts"]],
        )
    sidecar = _sidecar_path(path)
    if os.path.isfile(sidecar):
        with open(sidecar, encoding="utf-8") as handle:
            meta = json.load(handle)
        expected = meta.get("fingerprint")
        if expected and expected != trace.fingerprint:
            raise ValueError(
                f"canonical trace {path!r} does not match its sidecar "
                f"fingerprint (expected {expected}, got {trace.fingerprint}); "
                f"re-run 'python -m repro data clean'"
            )
    return trace


def clean_trace(
    source: str, dest: Optional[str] = None
) -> Tuple[CanonicalTrace, CleanReport, Optional[str]]:
    """Clean a raw CSV trace and optionally write the canonical ``.npz``.

    Returns ``(trace, report, dest)`` where ``dest`` is the written
    canonical path (or ``None`` when no destination was given).
    """
    trace, report = _read_raw_csv(source)
    if dest is not None:
        write_canonical(trace, dest, report)
    return trace, report, dest


def load_trace(path: Optional[str] = None) -> CanonicalTrace:
    """Load a trace from canonical ``.npz`` or raw CSV (cleaned in memory)."""
    if path is None:
        path = fixture_path(DEFAULT_TRACE_FIXTURE)
    if path.endswith(".npz"):
        return read_canonical(path)
    trace, _ = _read_raw_csv(path)
    return trace


def trace_info(path: Optional[str] = None) -> Dict[str, object]:
    """Summary statistics for ``python -m repro data info``."""
    if path is None:
        path = fixture_path(DEFAULT_TRACE_FIXTURE)
    if path.endswith(".npz"):
        trace = read_canonical(path)
        report = None
    else:
        trace, report = _read_raw_csv(path)
    info: Dict[str, object] = {
        "path": os.path.abspath(path),
        "format": _CANONICAL_FORMAT,
        "fingerprint": trace.fingerprint,
        "payments": trace.count,
        "accounts": len(trace.accounts),
        "duration": trace.duration,
        "total_value": trace.total_value,
    }
    if trace.count:
        info["value_min"] = float(trace.values.min())
        info["value_median"] = float(np.median(trace.values))
        info["value_max"] = float(trace.values.max())
    if report is not None:
        info["cleaning"] = report.as_dict()
    return info


def _account_activity(trace: CanonicalTrace) -> np.ndarray:
    """Payments sent + received per account index."""
    activity = np.zeros(len(trace.accounts), dtype=np.int64)
    np.add.at(activity, trace.senders, 1)
    np.add.at(activity, trace.recipients, 1)
    return activity


def _map_accounts(
    trace: CanonicalTrace,
    network: PCNetwork,
    mapping: str,
    seed: Optional[int],
) -> List[object]:
    """Assign each trace account a network node; wraps when accounts > nodes.

    ``"activity"`` (default, deterministic): the most active accounts land
    on the best-connected nodes, aligning the trace's traffic concentration
    with the graph's hub structure.  ``"random"``: a seed-derived
    permutation of nodes, cycled over accounts ranked by activity.
    """
    nodes = sorted(network.nodes(), key=str)
    if not nodes:
        raise ValueError("network has no nodes to map trace accounts onto")
    activity = _account_activity(trace)
    account_order = sorted(
        range(len(trace.accounts)),
        key=lambda i: (-int(activity[i]), trace.accounts[i]),
    )
    if mapping == "activity":
        degree = {node: len(network.neighbors(node)) for node in nodes}
        node_order = sorted(nodes, key=lambda n: (-degree[n], str(n)))
    elif mapping == "random":
        # Imported lazily: spec.py imports the source registry, which
        # imports this module, so a top-level import would be circular.
        from repro.scenarios.spec import derive_seed

        rng = np.random.default_rng(derive_seed(seed if seed is not None else 0, "trace-map"))
        node_order = [nodes[i] for i in rng.permutation(len(nodes))]
    else:
        raise ValueError(f"unknown account mapping {mapping!r}; expected 'activity' or 'random'")

    assigned: List[object] = [None] * len(trace.accounts)
    for rank, account_index in enumerate(account_order):
        assigned[account_index] = node_order[rank % len(node_order)]
    return assigned


def trace_workload(
    network: PCNetwork,
    trace: CanonicalTrace,
    *,
    seed: Optional[int] = 0,
    duration: Optional[float] = None,
    time_scale: Optional[float] = None,
    value_scale: float = 1.0,
    min_value: float = 0.0,
    max_payments: Optional[int] = None,
    mapping: str = "activity",
    chunk_size: int = _REPLAY_CHUNK,
) -> StreamingWorkload:
    """Replay a canonical trace onto a network as a streaming workload.

    Args:
        network: Target network; trace accounts are mapped onto its nodes.
        seed: Run seed (used only by ``mapping="random"``; recorded in the
            workload config either way).
        duration: Compress/stretch the trace to this many simulated
            seconds.  Mutually exclusive with ``time_scale``; if neither is
            given the trace's own (zero-based) timestamps are replayed
            as-is.
        time_scale: Multiplier on trace timestamps (``0.5`` = twice as fast).
        value_scale: Multiplier on payment values, mirroring the synthetic
            workload's transaction-size sweeps.
        min_value: Floor applied to scaled values (``0`` disables).
        max_payments: Replay only the first N payments.
        mapping: Account->node mapping strategy (see :func:`_map_accounts`).
        chunk_size: Payments per streamed chunk.

    Returns:
        A :class:`StreamingWorkload` whose chunks are built lazily from the
        trace arrays; payments that collapse onto a single node after
        mapping (when accounts outnumber nodes) are skipped and excluded
        from the up-front count/total-value statistics.
    """
    if trace.count == 0:
        raise ValueError("trace has no payments to replay")
    if duration is not None and time_scale is not None:
        raise ValueError("pass either duration or time_scale, not both")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")

    times = trace.times
    values = trace.values
    senders = trace.senders
    recipients = trace.recipients
    if max_payments is not None:
        if max_payments < 1:
            raise ValueError("max_payments must be at least 1")
        times = times[:max_payments]
        values = values[:max_payments]
        senders = senders[:max_payments]
        recipients = recipients[:max_payments]
        if times.size and times[0] != 0.0:
            times = times - times[0]

    raw_duration = float(times[-1]) if times.size else 0.0
    if duration is not None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        scale = duration / raw_duration if raw_duration > 0 else 0.0
    elif time_scale is not None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        scale = float(time_scale)
    else:
        scale = 1.0
    times = times * scale if scale != 1.0 else times

    if value_scale <= 0:
        raise ValueError("value_scale must be positive")
    values = values * value_scale
    if min_value > 0:
        values = np.maximum(values, min_value)

    node_of = _map_accounts(trace, network, mapping, seed)
    sender_nodes = np.asarray([node_of[i] for i in senders], dtype=object)
    recipient_nodes = np.asarray([node_of[i] for i in recipients], dtype=object)
    keep = sender_nodes != recipient_nodes
    kept_count = int(keep.sum())
    if kept_count == 0:
        raise ValueError("every trace payment collapsed to a self-payment after mapping")
    kept_value = float(values[keep].sum())

    effective_duration = float(times[-1]) if times.size else 0.0
    config_duration = max(effective_duration, 1e-9)
    config = WorkloadConfig(
        duration=config_duration,
        arrival_rate=max(kept_count / config_duration, 1e-9),
        value_scale=value_scale,
        sender_skew=0.0,
        recipient_skew=0.0,
        deadlock_fraction=0.0,
        min_value=min_value,
        seed=seed,
    )

    def chunks() -> Iterator[List[TransactionRequest]]:
        for start in range(0, times.size, chunk_size):
            stop = min(start + chunk_size, times.size)
            chunk = [
                TransactionRequest(
                    arrival_time=float(times[i]),
                    sender=sender_nodes[i],
                    recipient=recipient_nodes[i],
                    value=float(values[i]),
                )
                for i in range(start, stop)
                if keep[i]
            ]
            if chunk:
                yield chunk

    return StreamingWorkload(
        config=config,
        count=kept_count,
        total_value=kept_value,
        chunk_factory=chunks,
    )


@workload_source(
    "ripple-trace",
    description="Ripple-style payment trace (raw CSV or canonical NPZ), streamed in chunks",
    synthetic=False,
)
def _ripple_trace_source(network, seed, params, spec):
    """Build a streaming trace replay; spec fields supply scaling defaults."""
    params = dict(params)
    path = params.pop("path", None)
    trace = load_trace(path)
    known = {
        "duration",
        "time_scale",
        "value_scale",
        "min_value",
        "max_payments",
        "mapping",
        "chunk_size",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown ripple-trace parameter(s) {unknown}; expected one of "
            f"{sorted(known | {'path'})}"
        )
    if "time_scale" not in params:
        params.setdefault("duration", spec.duration)
    params.setdefault("value_scale", spec.value_scale)
    params.setdefault("min_value", spec.min_value)
    return trace_workload(network, trace, seed=seed, **params)
