"""Lightning-style channel-graph snapshot loader.

Turns a channel-graph snapshot -- ``lnd describegraph`` JSON or a simple
edge-list CSV -- into a funded :class:`~repro.topology.network.PCNetwork`
ready for placement and routing experiments:

1. **Parse** nodes and channels, tolerating the mess real snapshots carry
   (string-encoded capacities, missing fee policies, parallel channels
   between the same pair, zero-capacity edges).
2. **Normalize** capacities into the paper's token units -- by default the
   snapshot is rescaled so its *median* channel matches the paper's median
   channel size (152 tokens), preserving the capacity distribution's shape;
   base fees rescale by the same factor, proportional fee rates pass
   through unchanged.
3. **Reduce** to the largest connected component, optionally capped to
   ``max_nodes`` by keeping the highest-degree (then highest-capacity)
   nodes so the hub structure the paper's placement schemes target
   survives the cut.
4. **Assign roles**: the top ``candidate_fraction`` of nodes by degree
   become PCH candidates, mirroring the synthetic generators.

Everything here is deterministic -- no RNG is involved, ties break on node
ids -- so the source registers ``seeded=False`` and snapshot-backed runs
fingerprint/resume exactly like synthetic ones.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.data.fixtures import fixture_path
from repro.data.sources import topology_source
from repro.topology.datasets import PAPER_CHANNEL_MEDIAN, PAPER_CHANNEL_MIN
from repro.topology.network import PCNetwork

__all__ = [
    "DEFAULT_SNAPSHOT_FIXTURE",
    "SnapshotChannel",
    "SnapshotGraph",
    "load_snapshot",
    "parse_snapshot",
    "snapshot_info",
]

DEFAULT_SNAPSHOT_FIXTURE = "lightning_small.json"

#: Accepted spellings for the two endpoint columns / keys.
_ENDPOINT_KEYS = (
    ("node1_pub", "node2_pub"),
    ("node1", "node2"),
    ("source", "target"),
    ("from", "to"),
)


@dataclass(frozen=True)
class SnapshotChannel:
    """One (aggregated) channel parsed from a snapshot."""

    node_a: str
    node_b: str
    capacity: float
    base_fee: float = 0.0
    fee_rate: float = 0.0


@dataclass
class SnapshotGraph:
    """Parsed snapshot: aggregated channels plus parse statistics."""

    channels: List[SnapshotChannel]
    nodes: List[str]
    #: raw channel records seen, before aggregation/dropping
    raw_channels: int = 0
    dropped_invalid: int = 0
    merged_parallel: int = 0
    isolated_nodes: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)


def _parse_amount(value: object) -> Optional[float]:
    """A float from a snapshot field, or ``None`` if it is not a number."""
    if value is None or isinstance(value, bool):
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _endpoints(record: Dict[str, object]) -> Optional[Tuple[str, str]]:
    for key_a, key_b in _ENDPOINT_KEYS:
        if key_a in record and key_b in record:
            node_a = str(record[key_a]).strip()
            node_b = str(record[key_b]).strip()
            if node_a and node_b:
                return node_a, node_b
            return None
    return None


def _policy_fees(record: Dict[str, object]) -> Tuple[float, float]:
    """Extract (base_fee, fee_rate) from explicit fields or an lnd policy.

    ``lnd`` policies quote base fees in millisatoshi and rates in
    milli-msat per sat (parts per million); both are converted to the
    snapshot's native capacity unit / plain proportions here so the later
    capacity normalization treats them uniformly.
    """
    base_fee = _parse_amount(record.get("base_fee"))
    fee_rate = _parse_amount(record.get("fee_rate"))
    if base_fee is None or fee_rate is None:
        for policy_key in ("node1_policy", "node2_policy"):
            policy = record.get(policy_key)
            if not isinstance(policy, dict):
                continue
            if base_fee is None:
                msat = _parse_amount(policy.get("fee_base_msat"))
                if msat is not None:
                    base_fee = msat / 1000.0
            if fee_rate is None:
                ppm = _parse_amount(policy.get("fee_rate_milli_msat"))
                if ppm is not None:
                    fee_rate = ppm / 1_000_000.0
            if base_fee is not None and fee_rate is not None:
                break
    return (
        max(base_fee, 0.0) if base_fee is not None else 0.0,
        max(fee_rate, 0.0) if fee_rate is not None else 0.0,
    )


def _iter_json_records(payload: object) -> Iterable[Dict[str, object]]:
    if isinstance(payload, dict):
        for key in ("edges", "channels"):
            records = payload.get(key)
            if isinstance(records, list):
                return (r for r in records if isinstance(r, dict))
        raise ValueError("snapshot JSON has no 'edges' or 'channels' list")
    if isinstance(payload, list):
        return (r for r in payload if isinstance(r, dict))
    raise ValueError("snapshot JSON must be an object or a list of channels")


def _iter_csv_records(path: str) -> Iterable[Dict[str, object]]:
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            yield {
                (key.strip().lower() if key else ""): value
                for key, value in row.items()
                if key is not None
            }


def parse_snapshot(path: str) -> SnapshotGraph:
    """Parse a snapshot file into aggregated channels plus statistics.

    JSON (``.json``) is read in ``describegraph`` shape (an ``edges`` or
    ``channels`` list, or a bare list of channel objects); anything else is
    read as CSV with a header naming the endpoints and ``capacity``.
    Parallel channels between the same pair are merged by summing capacity
    (first policy wins for fees); channels with missing endpoints,
    self-loops or non-positive capacity are dropped and counted.
    """
    declared_nodes: set = set()
    metadata: Dict[str, object] = {}
    if path.endswith(".json"):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        records = _iter_json_records(payload)
        if isinstance(payload, dict):
            for node in payload.get("nodes", []) or []:
                if isinstance(node, dict):
                    pub = node.get("pub_key") or node.get("id")
                    if pub:
                        declared_nodes.add(str(pub))
            for key in ("timestamp", "height", "network"):
                if key in payload:
                    metadata[key] = payload[key]
    else:
        records = _iter_csv_records(path)

    aggregated: Dict[Tuple[str, str], SnapshotChannel] = {}
    raw = invalid = merged = 0
    for record in records:
        raw += 1
        endpoints = _endpoints(record)
        capacity = _parse_amount(record.get("capacity"))
        if endpoints is None or capacity is None or capacity <= 0:
            invalid += 1
            continue
        node_a, node_b = endpoints
        if node_a == node_b:
            invalid += 1
            continue
        key = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        base_fee, fee_rate = _policy_fees(record)
        existing = aggregated.get(key)
        if existing is None:
            aggregated[key] = SnapshotChannel(
                node_a=key[0],
                node_b=key[1],
                capacity=capacity,
                base_fee=base_fee,
                fee_rate=fee_rate,
            )
        else:
            merged += 1
            aggregated[key] = SnapshotChannel(
                node_a=existing.node_a,
                node_b=existing.node_b,
                capacity=existing.capacity + capacity,
                base_fee=existing.base_fee,
                fee_rate=existing.fee_rate,
            )

    channels = [aggregated[key] for key in sorted(aggregated)]
    connected = {node for ch in channels for node in (ch.node_a, ch.node_b)}
    isolated = len(declared_nodes - connected)
    return SnapshotGraph(
        channels=channels,
        nodes=sorted(connected),
        raw_channels=raw,
        dropped_invalid=invalid,
        merged_parallel=merged,
        isolated_nodes=isolated,
        metadata=metadata,
    )


def _as_graph(snapshot: SnapshotGraph) -> "nx.Graph":
    graph = nx.Graph()
    graph.add_nodes_from(snapshot.nodes)
    for channel in snapshot.channels:
        graph.add_edge(
            channel.node_a,
            channel.node_b,
            capacity=channel.capacity,
            base_fee=channel.base_fee,
            fee_rate=channel.fee_rate,
        )
    return graph


def _node_rank_key(graph: "nx.Graph"):
    """Sort key ranking nodes hub-first: degree, then total capacity, then id."""
    strength = {
        node: sum(data["capacity"] for data in graph[node].values())
        for node in graph.nodes
    }

    def key(node: str) -> Tuple[int, float, str]:
        return (-graph.degree(node), -strength[node], str(node))

    return key


def _largest_component(graph: "nx.Graph") -> "nx.Graph":
    if graph.number_of_nodes() == 0:
        raise ValueError("snapshot has no usable channels")
    components = sorted(nx.connected_components(graph), key=lambda c: (-len(c), min(c)))
    return graph.subgraph(components[0]).copy()


def _cap_nodes(graph: "nx.Graph", max_nodes: int) -> "nx.Graph":
    """Keep the ``max_nodes`` best-connected nodes, then re-extract the LCC.

    Ranking by degree (capacity as tie-break) keeps the snapshot's hubs and
    their periphery, which is the structure hub-placement experiments need;
    cutting low-degree leaves first means the survivor graph usually stays
    connected, but the LCC is re-extracted to guarantee it.
    """
    if graph.number_of_nodes() <= max_nodes:
        return graph
    keep = sorted(graph.nodes, key=_node_rank_key(graph))[:max_nodes]
    return _largest_component(graph.subgraph(keep).copy())


def load_snapshot(
    path: Optional[str] = None,
    *,
    max_nodes: Optional[int] = None,
    candidate_fraction: float = 0.15,
    capacity_unit: object = "auto",
    min_capacity: Optional[float] = PAPER_CHANNEL_MIN,
    channel_scale: Optional[float] = None,
) -> PCNetwork:
    """Load a channel-graph snapshot into a funded :class:`PCNetwork`.

    Args:
        path: Snapshot file (JSON or CSV); defaults to the bundled
            ``lightning_small.json`` fixture.
        max_nodes: Optional cap applied hub-first (see :func:`_cap_nodes`).
        candidate_fraction: Fraction of nodes (highest degree first)
            marked as PCH candidates; at least one node is always a
            candidate.
        capacity_unit: ``"auto"`` rescales so the median channel equals
            the paper's 152-token median; a positive number divides raw
            capacities by that unit instead; ``None``/``1`` keeps raw
            units.
        min_capacity: Floor (in normalized tokens) applied after scaling,
            mirroring the paper's 10-token minimum channel; ``None``
            disables the floor.
        channel_scale: The spec-level channel-size multiplier, applied
            after normalization so figure-8-style capacity sweeps work on
            real snapshots too.

    Returns:
        A :class:`PCNetwork` whose balances split each channel's capacity
        evenly between its endpoints.
    """
    if path is None:
        path = fixture_path(DEFAULT_SNAPSHOT_FIXTURE)
    if not isinstance(candidate_fraction, (int, float)) or not 0 < candidate_fraction <= 1:
        raise ValueError("candidate_fraction must be in (0, 1]")
    snapshot = parse_snapshot(path)
    graph = _largest_component(_as_graph(snapshot))
    if max_nodes is not None:
        if int(max_nodes) < 2:
            raise ValueError("max_nodes must be at least 2")
        graph = _cap_nodes(graph, int(max_nodes))

    capacities = sorted(data["capacity"] for _, _, data in graph.edges(data=True))
    if capacity_unit == "auto":
        median = capacities[len(capacities) // 2]
        unit = median / PAPER_CHANNEL_MEDIAN if median > 0 else 1.0
    elif capacity_unit in (None, 1, 1.0):
        unit = 1.0
    else:
        unit = float(capacity_unit)
        if unit <= 0:
            raise ValueError("capacity_unit must be positive or 'auto'")
    scale = float(channel_scale) if channel_scale is not None else 1.0
    if scale <= 0:
        raise ValueError("channel_scale must be positive")

    nodes = sorted(graph.nodes, key=str)
    ranked = sorted(nodes, key=_node_rank_key(graph))
    candidate_count = max(1, round(candidate_fraction * len(nodes)))
    candidates = set(ranked[:candidate_count])

    network = PCNetwork()
    for node in nodes:
        network.add_node(node, role="candidate" if node in candidates else "client")
    for node_a, node_b in sorted(graph.edges(), key=lambda edge: tuple(sorted(edge))):
        data = graph[node_a][node_b]
        capacity = data["capacity"] / unit
        if min_capacity is not None:
            capacity = max(capacity, float(min_capacity))
        capacity *= scale
        network.add_channel(
            min(node_a, node_b, key=str),
            max(node_a, node_b, key=str),
            balance_a=capacity / 2.0,
            balance_b=capacity / 2.0,
            base_fee=data["base_fee"] / unit * scale,
            fee_rate=data["fee_rate"],
        )
    return network


def snapshot_info(path: Optional[str] = None) -> Dict[str, object]:
    """Summary statistics for ``python -m repro data info``."""
    if path is None:
        path = fixture_path(DEFAULT_SNAPSHOT_FIXTURE)
    snapshot = parse_snapshot(path)
    graph = _as_graph(snapshot)
    components = sorted((len(c) for c in nx.connected_components(graph)), reverse=True)
    capacities = sorted(channel.capacity for channel in snapshot.channels)
    info: Dict[str, object] = {
        "path": os.path.abspath(path),
        "format": "lightning-snapshot",
        "nodes": len(snapshot.nodes),
        "channels": len(snapshot.channels),
        "raw_channels": snapshot.raw_channels,
        "dropped_invalid": snapshot.dropped_invalid,
        "merged_parallel": snapshot.merged_parallel,
        "isolated_nodes": snapshot.isolated_nodes,
        "components": components,
        "largest_component": components[0] if components else 0,
    }
    if capacities:
        info["capacity_min"] = capacities[0]
        info["capacity_median"] = capacities[len(capacities) // 2]
        info["capacity_max"] = capacities[-1]
        info["capacity_total"] = sum(capacities)
    if snapshot.metadata:
        info["metadata"] = snapshot.metadata
    return info


@topology_source(
    "lightning-snapshot",
    description="Lightning-style channel-graph snapshot (JSON/CSV), normalized to paper units",
    seeded=False,
    channel_scale=True,
    synthetic=False,
)
def _lightning_snapshot_source(channel_scale=None, **params):
    return load_snapshot(channel_scale=channel_scale, **params)
