"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` -- show the registered scenarios and topology/workload sources,
* ``show <scenario>`` -- print a scenario's spec as JSON,
* ``data fetch|clean|info`` -- dataset utilities: stage the bundled
  fixture datasets, clean a raw payment-trace CSV into the canonical
  fingerprinted NPZ, and inspect snapshot/trace files,
* ``run <scenario>`` -- execute a scenario grid in parallel, append
  resumable JSONL results and print the aggregated per-scheme table.
* ``compare`` -- the figure-8 comparison pipeline: shard a multi-scheme,
  multi-scale scheme comparison over worker processes (one scheme x seed
  per run, resumable JSONL) and print one figure-8-shaped table per scale.
* ``place-compare`` -- the figure-9 placement pipeline: shard a
  (placement method x omega x seed) sweep over worker processes and print
  one figure-9-shaped table per scale.
* ``report <results-dir>`` -- summarize a results directory: per-scheme
  tables, failure-reason breakdown and (for traced runs) epoch health.
* ``trace <trace-file>`` -- filter and pretty-print a payment trace,
  including a per-payment ``--timeline`` view.
* ``perf`` -- run the micro-benchmark suites, emit ``BENCH_<rev>.json`` and
  optionally gate against (``--check``) or rewrite (``--update-baseline``)
  the committed ``benchmarks/perf_baseline.json``.
* ``doctor`` -- reap orphaned shared-memory segments left by killed
  runners and inspect or clear sweep quarantine files
  (see ``docs/resilience.md``).

``run`` re-invoked with the same arguments performs zero duplicate
simulation work: completed (scenario, seed, overrides) keys are skipped.

The global ``--log-json`` flag switches every progress/summary line to
structured JSONL records (see :mod:`repro.obs.log`); ``--verbose`` lowers
the threshold to debug.  ``run`` and ``compare`` accept ``--trace`` to
record sampled payment-lifecycle traces plus epoch health telemetry under
``<results-dir>/obs`` (see :mod:`repro.obs`), and every pipeline records
what it wrote in ``<results-dir>/manifest.json`` for ``repro report``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table, scenario_table
from repro.baselines import SCHEME_REGISTRY
from repro.data.cli import add_data_arguments, run_data_command
from repro.data.sources import list_topology_sources, list_workload_sources
from repro.obs import DEFAULT_SAMPLE_RATE
from repro.obs.log import INFO, configure, get_logger
from repro.obs.report import (
    filter_trace_events,
    read_trace,
    render_report,
    render_timeline,
    render_trace,
    update_manifest,
)
from repro.placement.compare import (
    PLACE_METHODS,
    PLACE_SCHEMA_VERSION,
    PLACEMENT_SCALES,
    PlacementCompareRunner,
    build_place_spec,
    fig9_table,
)
from repro.scenarios.registry import (
    COMPARISON_SCALES,
    build_comparison_spec,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.jsonl import GridRunReport, ShardFailure, SweepInterrupted
from repro.scenarios.runner import RESULT_SCHEMA_VERSION, ScenarioRunner
from repro.scenarios.spec import SchemeSpec

log = get_logger("repro.cli")


def _add_resilience_arguments(sub: argparse.ArgumentParser) -> None:
    """Shard-failure handling flags shared by the sweep pipelines."""
    sub.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help=(
            "wall-clock seconds one shard may run before its worker is "
            "killed and the attempt counts as failed (default: no timeout; "
            "needs --workers >= 2)"
        ),
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="retries per failed shard under --on-shard-error=retry (default 1)",
    )
    sub.add_argument(
        "--on-shard-error",
        choices=["fail", "skip", "retry"],
        default="retry",
        help=(
            "what a shard failure does: record it and retry then quarantine "
            "(retry, default), record it and move on (skip), or record it "
            "and stop the sweep (fail)"
        ),
    )


def _add_obs_arguments(sub: argparse.ArgumentParser) -> None:
    """Observability flags shared by the simulating pipelines."""
    sub.add_argument(
        "--trace",
        action="store_true",
        help="record sampled payment traces + epoch health telemetry",
    )
    sub.add_argument(
        "--obs-dir",
        default=None,
        help="directory for trace/health artifacts (default <results-dir>/obs)",
    )
    sub.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        help=f"fraction of payments traced (default {DEFAULT_SAMPLE_RATE})",
    )
    sub.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed of the content-addressed sampling hash (default 0)",
    )
    sub.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="sim-seconds between epoch health probes; 0 disables (default 1)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Splicer reproduction: scenario orchestration CLI",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also print debug-level log lines"
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit progress/summary lines as JSONL records instead of text",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list", help="list registered scenarios and topology/workload sources"
    )

    show = commands.add_parser("show", help="print a scenario spec as JSON")
    show.add_argument("scenario", help="registered scenario name")

    run = commands.add_parser("run", help="execute a scenario grid")
    run.add_argument("scenario", help="registered scenario name")
    run.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--results-dir",
        default=os.path.join("results", "scenarios"),
        help="directory for the JSONL results (default results/scenarios)",
    )
    run.add_argument("--seeds", help="comma-separated seeds overriding the spec's")
    run.add_argument(
        "--schemes", help="comma-separated scheme names restricting the comparison"
    )
    run.add_argument("--nodes", type=int, help="override topology node count")
    run.add_argument("--duration", type=float, help="override workload duration (seconds)")
    run.add_argument(
        "--arrival-rate", type=float, help="override workload arrival rate (payments/s)"
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="PATH=JSON",
        help="extra dotted-path override, e.g. --set workload.value_scale=2.0",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-run progress lines")
    _add_obs_arguments(run)
    _add_resilience_arguments(run)

    compare = commands.add_parser(
        "compare", help="run the figure-8 scheme comparison, sharded over workers"
    )
    compare.add_argument(
        "--schemes",
        default="splicer,spider,flash,landmark",
        help="comma-separated scheme names (default splicer,spider,flash,landmark)",
    )
    compare.add_argument(
        "--scale",
        default="large",
        help=(
            "comma-separated comparison scale(s): "
            f"{', '.join(sorted(COMPARISON_SCALES))} (default large)"
        ),
    )
    compare.add_argument(
        "--backend",
        choices=["numpy", "python"],
        default="numpy",
        help="execution backend for every scheme (default numpy)",
    )
    compare.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    compare.add_argument("--seeds", default="1", help="comma-separated seeds (default 1)")
    compare.add_argument(
        "--duration", type=float, default=8.0, help="workload duration in seconds (default 8)"
    )
    compare.add_argument("--nodes", type=int, help="override the scale's node count")
    compare.add_argument(
        "--arrival-rate", type=float, help="override the scale's arrival rate (payments/s)"
    )
    compare.add_argument(
        "--payments",
        type=int,
        help=(
            "override the scale's offered payment count (sets the arrival "
            "rate to payments/duration); mutually exclusive with "
            "--arrival-rate"
        ),
    )
    compare.add_argument(
        "--engine",
        choices=["events", "epoch"],
        default=None,
        help=(
            "simulation engine: the per-event reference loop or the "
            "array-native epoch stepper (decision-identical; default epoch "
            "at the xl scale, events elsewhere)"
        ),
    )
    compare.add_argument(
        "--shared-memory",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "share each seed's topology across worker processes via a "
            "read-only shared-memory block instead of rebuilding it per "
            "shard (default on at the xl scale, off elsewhere)"
        ),
    )
    compare.add_argument(
        "--results-dir",
        default=os.path.join("results", "compare"),
        help="directory for the JSONL results (default results/compare)",
    )
    compare.add_argument(
        "--path-cache-dir",
        default=None,
        help=(
            "directory of the persistent path-catalog cache shared by shard "
            "workers (default <results-dir>/path-cache)"
        ),
    )
    compare.add_argument(
        "--no-path-cache",
        action="store_true",
        help="disable the persistent path-catalog cache",
    )
    compare.add_argument(
        "--topology-source",
        default=None,
        metavar="KIND|JSON",
        help=(
            "topology source descriptor replacing the synthetic graph: a "
            "registered kind (e.g. lightning-snapshot) or a JSON object "
            'like {"kind": "lightning-snapshot", "path": "..."}'
        ),
    )
    compare.add_argument(
        "--workload-source",
        default=None,
        metavar="KIND|JSON",
        help=(
            "workload source descriptor replacing the Poisson generator: a "
            "registered kind (e.g. ripple-trace) or a JSON object "
            'like {"kind": "ripple-trace", "path": "..."}'
        ),
    )
    compare.add_argument("--quiet", action="store_true", help="suppress per-run progress lines")
    _add_obs_arguments(compare)
    _add_resilience_arguments(compare)

    data = commands.add_parser(
        "data", help="dataset utilities: fetch fixtures, clean traces, inspect files"
    )
    add_data_arguments(data)

    place = commands.add_parser(
        "place-compare",
        help="run the figure-9 placement method sweep, sharded over workers",
    )
    place.add_argument(
        "--scale",
        default="small",
        help=(
            "comma-separated placement scale(s): "
            f"{', '.join(sorted(PLACEMENT_SCALES))} (default small)"
        ),
    )
    place.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated placement methods overriding the scale's default "
            f"line-up; choose from {', '.join(PLACE_METHODS)}"
        ),
    )
    place.add_argument(
        "--omegas",
        default=None,
        help="comma-separated omega sweep values (default: the paper's sweep)",
    )
    place.add_argument(
        "--backend",
        choices=["numpy", "python"],
        default="numpy",
        help="execution backend for every solve (default numpy)",
    )
    place.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    place.add_argument("--seeds", default="1", help="comma-separated seeds (default 1)")
    place.add_argument("--nodes", type=int, help="override the scale's node count")
    place.add_argument(
        "--results-dir",
        default=os.path.join("results", "place"),
        help="directory for the JSONL results (default results/place)",
    )
    place.add_argument(
        "--path-cache-dir",
        default=None,
        help=(
            "directory of the persistent hop-matrix cache shared by shard "
            "workers (default <results-dir>/path-cache)"
        ),
    )
    place.add_argument(
        "--no-path-cache",
        action="store_true",
        help="disable the persistent hop-matrix cache",
    )
    place.add_argument("--quiet", action="store_true", help="suppress per-run progress lines")
    _add_resilience_arguments(place)

    doctor = commands.add_parser(
        "doctor",
        help="reap orphaned shared-memory segments and inspect/clear quarantines",
    )
    doctor.add_argument(
        "--results-dir",
        default=None,
        help="results directory whose quarantine files to inspect (optional)",
    )
    doctor.add_argument(
        "--clear-quarantine",
        action="store_true",
        help="delete the directory's quarantine files so resume re-runs those shards",
    )

    report = commands.add_parser(
        "report", help="summarize a results directory (tables, failures, health)"
    )
    report.add_argument(
        "results_dir", help="results directory written by run/compare/place-compare"
    )

    trace = commands.add_parser(
        "trace", help="filter and pretty-print a payment-lifecycle trace"
    )
    trace.add_argument(
        "trace_file",
        help="trace JSONL file, or an obs directory holding trace-*.jsonl shards",
    )
    trace.add_argument("--payment", type=int, default=None, help="only this payment id")
    trace.add_argument(
        "--channel",
        default=None,
        metavar="A,B",
        help="only lock/contention events touching the A--B channel",
    )
    trace.add_argument("--reason", default=None, help="only events with this reason code")
    trace.add_argument(
        "--kind", default=None, help="only event kinds containing this substring"
    )
    trace.add_argument("--scheme", default=None, help="only this routing scheme's events")
    trace.add_argument(
        "--limit", type=int, default=50, help="rows rendered in table mode (default 50)"
    )
    trace.add_argument(
        "--timeline",
        action="store_true",
        help="render --payment as a relative-time lifecycle timeline",
    )

    perf = commands.add_parser("perf", help="run the performance benchmark suites")
    perf.add_argument(
        "--suite",
        choices=["small", "medium", "large", "xl-small", "all"],
        default="all",
        help=(
            "which scale to run: the classic three, the xl-small "
            "engine-overhead suite, or all of them (default all)"
        ),
    )
    perf.add_argument(
        "--repeats", type=int, default=5, help="timed repeats per benchmark (default 5)"
    )
    perf.add_argument(
        "--output-dir",
        default=".",
        help="directory for the emitted BENCH_<rev>.json (default: current directory)",
    )
    perf.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default benchmarks/perf_baseline.json)",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed normalized-time growth before --check fails (default 0.25)",
    )
    perf.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    perf.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this run's measurements",
    )
    perf.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print the benchmark report (and gate outcome) as JSON on stdout",
    )
    perf.add_argument(
        "--profile",
        action="store_true",
        help="run each benchmark once under cProfile and print the hottest calls",
    )
    perf.add_argument(
        "--profile-top",
        type=int,
        default=15,
        help="rows per benchmark in --profile output (default 15)",
    )
    return parser


def _parse_value(raw: str) -> object:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _obs_settings(args: argparse.Namespace) -> Optional[Dict[str, object]]:
    """The ``ScenarioSpec.obs`` block described by the CLI flags, if any."""
    if not getattr(args, "trace", False):
        return None
    sample_rate = (
        DEFAULT_SAMPLE_RATE if args.trace_sample_rate is None else args.trace_sample_rate
    )
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"--trace-sample-rate must be in (0, 1], got {sample_rate}")
    return {
        "dir": args.obs_dir or os.path.join(args.results_dir, "obs"),
        "sample_rate": sample_rate,
        "trace_seed": args.trace_seed,
        "health_interval": args.health_interval,
    }


def _spec_with_cli_overrides(args: argparse.Namespace):
    spec = get_scenario(args.scenario)
    overrides: Dict[str, object] = {}
    if args.nodes is not None:
        overrides["topology.params.node_count"] = args.nodes
    if args.duration is not None:
        overrides["workload.duration"] = args.duration
    if args.arrival_rate is not None:
        overrides["workload.arrival_rate"] = args.arrival_rate
    for entry in args.set:
        if "=" not in entry:
            raise SystemExit(f"--set expects PATH=JSON, got {entry!r}")
        path, raw = entry.split("=", 1)
        overrides[path.strip()] = _parse_value(raw)
    if overrides:
        spec = spec.with_overrides(overrides)
    if args.seeds:
        spec.seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    if args.schemes:
        wanted = [part.strip() for part in args.schemes.split(",") if part.strip()]
        if "schemes.0" in spec.grid:
            # Comparison-style scenarios shard the scheme dimension through
            # the grid; restricting `spec.schemes` alone would be silently
            # overridden run by run, so filter the grid instead.
            available = [entry.get("name") for entry in spec.grid["schemes.0"]]
            missing = [name for name in wanted if name not in available]
            if missing:
                raise ValueError(
                    f"--schemes {','.join(missing)} not in this scenario's grid "
                    f"schemes: {sorted(available)}"
                )
            spec.grid["schemes.0"] = [
                entry for entry in spec.grid["schemes.0"] if entry.get("name") in wanted
            ]
        else:
            _check_scheme_names(wanted)
            by_name = {scheme.name: scheme for scheme in spec.schemes}
            spec.schemes = [by_name.get(name, SchemeSpec(name=name)) for name in wanted]
    return spec


def _command_list() -> int:
    rows = [
        {"scenario": name, "description": description}
        for name, description in list_scenarios().items()
    ]
    log.info(format_table(rows))
    log.info("")
    log.info("topology sources (topology.kind / topology.source):")
    log.info(
        format_table(
            [
                {
                    "kind": info.kind,
                    "data": "synthetic" if info.synthetic else "data-backed",
                    "description": info.description,
                }
                for info in list_topology_sources()
            ]
        )
    )
    log.info("")
    log.info("workload sources (workload.source):")
    log.info(
        format_table(
            [
                {
                    "kind": info.kind,
                    "data": "synthetic" if info.synthetic else "data-backed",
                    "description": info.description,
                }
                for info in list_workload_sources()
            ]
        )
    )
    return 0


def _command_show(scenario: str) -> int:
    # The JSON spec *is* the output artifact, so it owns stdout directly
    # (it must stay parseable even under --log-json).
    print(json.dumps(get_scenario(scenario).to_dict(), indent=2, sort_keys=True))
    return 0


def _spec_sources(spec) -> Dict[str, object]:
    """The active topology/workload source descriptors of a scenario spec."""
    return {
        "topology": spec.topology.describe_source(),
        "workload": spec.workload.describe_source(),
    }


def _record_manifest(
    results_dir: str,
    command: str,
    name: str,
    results_path: str,
    schema_version: int,
    rows: int,
    obs_dir: Optional[str] = None,
    table: Optional[str] = None,
    sources: Optional[Dict[str, object]] = None,
    report: Optional[GridRunReport] = None,
) -> None:
    """Register one pipeline's outputs in ``<results_dir>/manifest.json``."""
    entry: Dict[str, object] = {
        "command": command,
        "name": name,
        "results": os.path.basename(results_path),
        "schema_version": schema_version,
        "rows": rows,
    }
    if obs_dir:
        entry["obs_dir"] = obs_dir
    if table:
        entry["table"] = os.path.basename(table)
    if sources:
        entry["sources"] = sources
    if report is not None and (report.failures or report.quarantined):
        entry["failures"] = len(report.failures)
        entry["quarantined"] = len(report.quarantined)
    path = update_manifest(results_dir, entry)
    log.debug(f"updated manifest {path}", command=command, name=name)


def _resilience_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """The runner's resilience keyword arguments from the CLI flags."""
    if args.shard_timeout is not None and args.workers <= 1:
        log.warning(
            "--shard-timeout needs --workers >= 2 (the serial path runs "
            "shards in-process and cannot kill a stuck one); ignoring it"
        )
    return {
        "shard_timeout": args.shard_timeout,
        "max_retries": args.max_retries,
        "on_error": args.on_shard_error,
    }


def _log_resilience(report: GridRunReport) -> None:
    """The post-sweep resilience summary lines (silent on a clean sweep)."""
    if report.retries:
        log.warning(
            f"retried {report.retries} failed shard attempt(s)", retries=report.retries
        )
    if report.failures:
        log.warning(
            f"recorded {len(report.failures)} shard failure row(s) in "
            f"{report.results_path}",
            failures=len(report.failures),
        )
    if report.quarantined:
        log.warning(
            f"{len(report.quarantined)} run(s) quarantined; resume skips them "
            f"until cleared with `python -m repro doctor --clear-quarantine`",
            quarantined=len(report.quarantined),
        )
    if report.corrupt_lines:
        log.warning(
            f"results file held {report.corrupt_lines} corrupt line(s); "
            f"the affected run(s) re-execute on resume",
            corrupt_lines=report.corrupt_lines,
        )


def _command_run(args: argparse.Namespace) -> int:
    spec = _spec_with_cli_overrides(args)
    spec.obs = _obs_settings(args)
    runner = ScenarioRunner(
        spec,
        results_dir=args.results_dir,
        workers=args.workers,
        **_resilience_kwargs(args),
    )
    total = len(spec.expand_runs())
    log.info(
        f"scenario {spec.name!r}: {total} run(s) "
        f"({len(spec.seeds)} seed(s) x {max(total // max(len(spec.seeds), 1), 1)} grid point(s)), "
        f"{args.workers} worker(s) -> {runner.results_path}",
        scenario=spec.name,
        runs=total,
        workers=args.workers,
    )

    started = time.perf_counter()
    progress = None
    if not args.quiet:

        def progress(row: Dict[str, object]) -> None:
            log.info(f"  done {row['run_key']}", run_key=row["run_key"])

    report = runner.run(on_row=progress)
    elapsed = time.perf_counter() - started
    log.info(
        f"executed {report.executed} run(s), skipped {report.skipped} already-completed "
        f"or quarantined, in {elapsed:.1f}s",
        executed=report.executed,
        skipped=report.skipped,
        seconds=round(elapsed, 3),
    )
    _log_resilience(report)
    log.info("")
    log.info(scenario_table(report.rows))
    _record_manifest(
        args.results_dir,
        command="run",
        name=spec.name,
        results_path=runner.results_path,
        schema_version=RESULT_SCHEMA_VERSION,
        rows=len(report.rows),
        obs_dir=spec.obs.get("dir") if spec.obs else None,
        sources=_spec_sources(spec),
        report=report,
    )
    return 0


def _parse_source_flag(raw: Optional[str], flag: str) -> Optional[object]:
    """A ``--topology-source``/``--workload-source`` value: kind name or JSON."""
    if raw is None:
        return None
    if raw.lstrip().startswith("{"):
        try:
            descriptor = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"{flag}: invalid JSON descriptor ({error}): {raw!r}") from None
        if not isinstance(descriptor, dict) or "kind" not in descriptor:
            raise ValueError(
                f"{flag}: descriptor JSON must be an object with a 'kind' key, got {raw!r}"
            )
        return descriptor
    return raw


def _check_scheme_names(names: Sequence[str]) -> None:
    """Reject unknown scheme names before any topology/worker spin-up."""
    unknown = [name for name in names if name not in SCHEME_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown scheme(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(SCHEME_REGISTRY))}"
        )


def _peak_memory_mib() -> Optional[Tuple[float, float]]:
    """Peak RSS of this process and its worker children, in MiB.

    The figure the xl memory ceiling is documented (and CI-grepped)
    against; ``None`` where the ``resource`` module is unavailable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    scale = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    runner_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / scale
    worker_mib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / scale
    return runner_mib, worker_mib


def _command_compare(args: argparse.Namespace) -> int:
    schemes = [part.strip() for part in args.schemes.split(",") if part.strip()]
    scales = [part.strip() for part in args.scale.split(",") if part.strip()]
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    if not schemes:
        raise ValueError("--schemes must name at least one scheme")
    if not scales:
        raise ValueError("--scale must name at least one scale")
    if not seeds:
        raise ValueError("--seeds must name at least one seed")
    if args.payments is not None and args.arrival_rate is not None:
        raise ValueError("--payments and --arrival-rate are mutually exclusive")
    _check_scheme_names(schemes)

    for scale in scales:
        spec = build_comparison_spec(
            scale,
            schemes,
            backend=args.backend,
            seeds=seeds,
            duration=args.duration,
            nodes=args.nodes,
            topology_source=_parse_source_flag(args.topology_source, "--topology-source"),
            workload_source=_parse_source_flag(args.workload_source, "--workload-source"),
            engine=args.engine,
        )
        if args.arrival_rate is not None:
            spec.workload.arrival_rate = args.arrival_rate
        if args.payments is not None:
            spec.workload.arrival_rate = args.payments / spec.workload.duration
        if not args.no_path_cache:
            spec.path_cache_dir = args.path_cache_dir or os.path.join(
                args.results_dir, "path-cache"
            )
        spec.obs = _obs_settings(args)
        shared = args.shared_memory if args.shared_memory is not None else scale == "xl"
        runner = ScenarioRunner(
            spec,
            results_dir=args.results_dir,
            workers=args.workers,
            shared_topology=shared,
            **_resilience_kwargs(args),
        )
        total = len(spec.expand_runs())
        source_kind, source_params = spec.topology.resolved_source()
        nodes = source_params.get("node_count") or source_params.get("max_nodes") or source_kind
        log.info(
            f"compare scale {scale!r}: {nodes} nodes, {len(schemes)} scheme(s) x "
            f"{len(seeds)} seed(s) = {total} run(s), {args.workers} worker(s) "
            f"-> {runner.results_path}",
            scale=scale,
            nodes=nodes,
            runs=total,
        )

        started = time.perf_counter()
        progress = None
        if not args.quiet:

            def progress(row: Dict[str, object]) -> None:
                scheme_names = ", ".join(row.get("metrics", {}))
                log.info(
                    f"  done seed={row['seed']} scheme={scheme_names}",
                    seed=row["seed"],
                    schemes=scheme_names,
                )

        report = runner.run(on_row=progress)
        elapsed = time.perf_counter() - started
        log.info(
            f"executed {report.executed} run(s), skipped {report.skipped} "
            f"already-completed or quarantined, in {elapsed:.1f}s",
            executed=report.executed,
            skipped=report.skipped,
            seconds=round(elapsed, 3),
        )
        _log_resilience(report)
        peak = _peak_memory_mib()
        if peak is not None:
            runner_mib, worker_mib = peak
            log.info(
                f"peak memory: runner {runner_mib:.0f} MiB, "
                f"max worker {worker_mib:.0f} MiB",
                runner_mib=round(runner_mib, 1),
                worker_mib=round(worker_mib, 1),
            )
        cache_rows = [row["path_cache"] for row in report.rows if "path_cache" in row]
        if cache_rows:
            hits = sum(int(entry.get("hits", 0)) for entry in cache_rows)
            misses = sum(int(entry.get("misses", 0)) for entry in cache_rows)
            log.info(
                f"path-catalog cache: {hits} hit(s), {misses} miss(es) "
                f"across {len(cache_rows)} run(s) -> {spec.path_cache_dir}",
                hits=hits,
                misses=misses,
            )
        log.info("")
        title = f"Figure 8 comparison -- scale {scale} ({nodes} nodes, backend {args.backend})"
        table = scenario_table(report.rows)
        log.info(title)
        log.info("=" * len(title))
        log.info(table)
        log.info("")
        table_path = os.path.join(args.results_dir, f"fig8-{scale}-{args.backend}.txt")
        with open(table_path, "w", encoding="utf-8") as handle:
            handle.write(f"{title}\n{'=' * len(title)}\n{table}\n")
        log.info(f"wrote {table_path}", path=table_path)
        _record_manifest(
            args.results_dir,
            command="compare",
            name=spec.name,
            results_path=runner.results_path,
            schema_version=RESULT_SCHEMA_VERSION,
            rows=len(report.rows),
            obs_dir=spec.obs.get("dir") if spec.obs else None,
            table=table_path,
            sources=_spec_sources(spec),
            report=report,
        )
    return 0


def _command_place_compare(args: argparse.Namespace) -> int:
    scales = [part.strip() for part in args.scale.split(",") if part.strip()]
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    methods = (
        [part.strip() for part in args.methods.split(",") if part.strip()]
        if args.methods
        else None
    )
    omegas = (
        [float(part) for part in args.omegas.split(",") if part.strip()]
        if args.omegas
        else None
    )
    if not scales:
        raise ValueError("--scale must name at least one scale")
    if not seeds:
        raise ValueError("--seeds must name at least one seed")

    for scale in scales:
        spec = build_place_spec(
            scale,
            methods=methods,
            omegas=omegas,
            seeds=seeds,
            backend=args.backend,
            nodes=args.nodes,
        )
        if not args.no_path_cache:
            spec.hop_cache_dir = args.path_cache_dir or os.path.join(
                args.results_dir, "path-cache"
            )
        runner = PlacementCompareRunner(
            spec,
            results_dir=args.results_dir,
            workers=args.workers,
            **_resilience_kwargs(args),
        )
        total = len(spec.expand_runs())
        log.info(
            f"place-compare scale {scale!r}: {spec.nodes} nodes, "
            f"{len(spec.methods)} method(s) x {len(spec.omegas)} omega(s) x "
            f"{len(seeds)} seed(s) = {total} run(s), {args.workers} worker(s) "
            f"-> {runner.results_path}",
            scale=scale,
            nodes=spec.nodes,
            runs=total,
        )

        started = time.perf_counter()
        progress = None
        if not args.quiet:

            def progress(row: Dict[str, object]) -> None:
                log.info(
                    f"  done seed={row['seed']} method={row['method']} "
                    f"omega={row['omega']} ({row['solve_seconds']}s)",
                    seed=row["seed"],
                    method=row["method"],
                    omega=row["omega"],
                )

        report = runner.run(on_row=progress)
        elapsed = time.perf_counter() - started
        log.info(
            f"executed {report.executed} run(s), skipped {report.skipped} "
            f"already-completed or quarantined, in {elapsed:.1f}s",
            executed=report.executed,
            skipped=report.skipped,
            seconds=round(elapsed, 3),
        )
        _log_resilience(report)
        probe_hits = sum(1 for row in report.rows if row.get("hop_cache") == "hit")
        probe_misses = sum(1 for row in report.rows if row.get("hop_cache") == "miss")
        if probe_hits or probe_misses:
            log.info(
                f"hop-matrix cache: {probe_hits} hit(s), {probe_misses} miss(es) "
                f"-> {spec.hop_cache_dir}",
                hits=probe_hits,
                misses=probe_misses,
            )
        log.info("")
        title = (
            f"Figure 9 placement comparison -- scale {scale} "
            f"({spec.nodes} nodes, backend {args.backend})"
        )
        table = fig9_table(report.rows, spec.methods)
        log.info(title)
        log.info("=" * len(title))
        log.info(table)
        log.info("")
        table_path = os.path.join(args.results_dir, f"fig9-{scale}-{args.backend}.txt")
        with open(table_path, "w", encoding="utf-8") as handle:
            handle.write(f"{title}\n{'=' * len(title)}\n{table}\n")
        log.info(f"wrote {table_path}", path=table_path)
        _record_manifest(
            args.results_dir,
            command="place-compare",
            name=runner.results_name,
            results_path=runner.results_path,
            schema_version=PLACE_SCHEMA_VERSION,
            rows=len(report.rows),
            table=table_path,
            report=report,
        )
    return 0


def _command_doctor(args: argparse.Namespace) -> int:
    """Health checks: reap orphaned shared memory, inspect/clear quarantines."""
    import glob as _glob

    from repro.topology.shared import reap_orphan_segments, scan_segments

    reaped = reap_orphan_segments()
    log.info(
        f"reaped {len(reaped)} orphaned shared-memory segment(s)"
        + (f": {', '.join(reaped)}" if reaped else ""),
        reaped=len(reaped),
    )
    live = [name for name, _owner, alive in scan_segments() if alive]
    if live:
        log.info(
            f"{len(live)} segment(s) belong to live runner(s) and were left alone",
            live=len(live),
        )
    if args.results_dir is None:
        if args.clear_quarantine:
            raise ValueError("--clear-quarantine needs --results-dir")
        return 0
    if not os.path.isdir(args.results_dir):
        raise ValueError(f"results directory {args.results_dir!r} does not exist")
    quarantine_files = sorted(
        _glob.glob(os.path.join(args.results_dir, "*.quarantine.jsonl"))
    )
    if not quarantine_files:
        log.info(f"no quarantine files under {args.results_dir}")
        return 0
    for path in quarantine_files:
        with open(path, "r", encoding="utf-8") as handle:
            entries = [line for line in handle if line.strip()]
        log.info(f"{path}: {len(entries)} quarantined run(s)", path=path)
        for line in entries:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            log.info(
                f"  {entry.get('run_key', '?')} -- {entry.get('failure', '?')} "
                f"{entry.get('error', '')} after {entry.get('attempts', '?')} attempt(s)"
            )
        if args.clear_quarantine:
            os.unlink(path)
            log.info(f"cleared {path}; resume will re-run those shards", path=path)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    log.info(render_report(args.results_dir))
    return 0


def _trace_events(path: str) -> List[Dict[str, object]]:
    """Events of one trace file, or of every shard in an obs directory."""
    if os.path.isdir(path):
        import glob as _glob

        shards = sorted(_glob.glob(os.path.join(path, "trace-*.jsonl")))
        if not shards:
            raise ValueError(f"no trace-*.jsonl files under {path!r}")
        events: List[Dict[str, object]] = []
        for shard in shards:
            events.extend(read_trace(shard))
        return events
    if not os.path.exists(path):
        raise ValueError(f"trace file {path!r} does not exist")
    return read_trace(path)


def _command_trace(args: argparse.Namespace) -> int:
    events = _trace_events(args.trace_file)
    channel = None
    if args.channel:
        endpoints = [part.strip() for part in args.channel.split(",") if part.strip()]
        if len(endpoints) != 2:
            raise ValueError(f"--channel expects two endpoints A,B, got {args.channel!r}")
        channel = endpoints
    if args.timeline:
        if args.payment is None:
            raise ValueError("--timeline requires --payment")
        # The timeline locates the payment itself; other filters still
        # narrow which of its events appear.
        selected = filter_trace_events(
            events, channel=channel, reason=args.reason, kind=args.kind, scheme=args.scheme
        )
        log.info(render_timeline(selected, args.payment))
        return 0
    selected = filter_trace_events(
        events,
        payment=args.payment,
        channel=channel,
        reason=args.reason,
        kind=args.kind,
        scheme=args.scheme,
    )
    log.info(render_trace(selected, limit=args.limit))
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    from repro.perf import baseline as perf_baseline
    from repro.perf.harness import default_report_name, profile_specs, run_specs
    from repro.perf.suites import build_suites

    if args.repeats < 1:
        raise ValueError("--repeats must be at least 1")
    if args.json_output and args.profile:
        raise ValueError("--json is not available with --profile")
    if args.json_output:
        # The JSON report owns stdout; progress/summary lines move to stderr.
        configure(stream=sys.stderr)
    scales = ["small", "medium", "large", "xl-small"] if args.suite == "all" else [args.suite]
    specs = build_suites(scales)
    log.info(f"perf: {len(specs)} benchmark(s) across suite(s) {', '.join(scales)}")

    if args.profile:
        if args.profile_top < 1:
            raise ValueError("--profile-top must be at least 1")
        profile_specs(specs, top=args.profile_top)
        return 0

    def on_record(record) -> None:
        log.info(
            f"  {record.name:<28} best {record.best_seconds * 1e3:9.3f} ms  "
            f"normalized {record.normalized:8.3f}",
            benchmark=record.name,
            normalized=round(record.normalized, 3),
        )

    report = run_specs(specs, repeats=args.repeats, on_record=on_record)
    for key, ratio in report.speedups().items():
        log.info(f"  speedup {key:<20} reference/fast = {ratio:.2f}x")

    os.makedirs(args.output_dir, exist_ok=True)
    report_path = os.path.join(args.output_dir, default_report_name(report.revision))
    report.write(report_path)
    log.info(f"wrote {report_path}", path=report_path)

    def emit_json(check: Optional[Dict[str, object]] = None) -> None:
        if not args.json_output:
            return
        payload = report.as_dict()
        if check is not None:
            payload["check"] = check
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))

    baseline_path = args.baseline or perf_baseline.DEFAULT_BASELINE_PATH
    if args.update_baseline and not args.check:
        perf_baseline.update_baseline(report, baseline_path)
        log.info(f"updated baseline {baseline_path}", path=baseline_path)
        emit_json()
        return 0
    if args.check:
        entries = perf_baseline.load_baseline(baseline_path)
        if entries is None:
            if args.update_baseline:
                # Bootstrapping: nothing to gate against yet, so this run
                # becomes the baseline.
                perf_baseline.update_baseline(report, baseline_path)
                log.info(f"no baseline to check against; created {baseline_path}")
                emit_json()
                return 0
            log.error(f"no baseline at {baseline_path}; run --update-baseline first")
            return 2
        entries = perf_baseline.filter_entries(entries, scales)
        tolerance = perf_baseline.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        comparison = perf_baseline.compare_report(report, entries, tolerance=tolerance)
        if comparison.regressions:
            # A transient load spike (noisy neighbor, cgroup throttling) can
            # inflate one measurement pass; regressions must survive an
            # independent re-measurement before they fail the gate.
            retry_names = {name for name, *_ in comparison.regressions}
            log.info(f"re-measuring {len(retry_names)} regressed benchmark(s) to rule out noise")
            retry_specs = [spec for spec in specs if spec.name in retry_names]
            retry = run_specs(retry_specs, repeats=args.repeats)
            by_name = {record.name: record for record in retry.records}
            for index, record in enumerate(report.records):
                better = by_name.get(record.name)
                if better is not None and better.normalized < record.normalized:
                    # Adopt the retry's record wholesale so the emitted
                    # report stays a self-consistent measurement, and mark
                    # it so analysts know a first pass was discarded.
                    better.meta["retried"] = True
                    report.records[index] = better
            report.write(report_path)
            comparison = perf_baseline.compare_report(report, entries, tolerance=tolerance)
        for line in comparison.summary_lines():
            log.info(line)
        if args.update_baseline:
            # Gate first, refresh second: a regression must never be baked
            # into the baseline it would then hide from.
            if comparison.ok:
                perf_baseline.update_baseline(report, baseline_path)
                log.info(f"updated baseline {baseline_path}", path=baseline_path)
            else:
                log.warning("baseline NOT updated: regressions above")
        emit_json(
            {
                "ok": comparison.ok,
                "tolerance": comparison.tolerance,
                "regressions": [
                    {"name": name, "baseline": base, "current": current, "ratio": ratio}
                    for name, base, current, ratio in comparison.regressions
                ],
                "missing": list(comparison.missing),
                "new": list(comparison.new),
            }
        )
        return 0 if comparison.ok else 1
    emit_json()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher (exposed for tests)."""
    args = _build_parser().parse_args(argv)
    configure(
        mode="jsonl" if args.log_json else "human",
        level=INFO,
        verbose=bool(args.verbose),
    )
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "show":
            return _command_show(args.scenario)
        if args.command == "perf":
            return _command_perf(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "place-compare":
            return _command_place_compare(args)
        if args.command == "report":
            return _command_report(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "doctor":
            return _command_doctor(args)
        if args.command == "data":
            return run_data_command(args)
        return _command_run(args)
    except ShardFailure as error:
        log.error(str(error))
        return 1
    except SweepInterrupted as error:
        log.error(str(error))
        # The conventional fatal-signal exit code, so wrapping scripts and
        # CI see the interruption as such rather than as a crash.
        return 128 + error.signum
    except (KeyError, ValueError) as error:
        log.error(str(error.args[0] if error.args else error))
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
