"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` -- show the registered scenarios,
* ``show <scenario>`` -- print a scenario's spec as JSON,
* ``run <scenario>`` -- execute a scenario grid in parallel, append
  resumable JSONL results and print the aggregated per-scheme table.

``run`` re-invoked with the same arguments performs zero duplicate
simulation work: completed (scenario, seed, overrides) keys are skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.tables import format_table, scenario_table
from repro.scenarios.registry import get_scenario, list_scenarios
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import SchemeSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Splicer reproduction: scenario orchestration CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios")

    show = commands.add_parser("show", help="print a scenario spec as JSON")
    show.add_argument("scenario", help="registered scenario name")

    run = commands.add_parser("run", help="execute a scenario grid")
    run.add_argument("scenario", help="registered scenario name")
    run.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--results-dir",
        default=os.path.join("results", "scenarios"),
        help="directory for the JSONL results (default results/scenarios)",
    )
    run.add_argument("--seeds", help="comma-separated seeds overriding the spec's")
    run.add_argument(
        "--schemes", help="comma-separated scheme names restricting the comparison"
    )
    run.add_argument("--nodes", type=int, help="override topology node count")
    run.add_argument("--duration", type=float, help="override workload duration (seconds)")
    run.add_argument(
        "--arrival-rate", type=float, help="override workload arrival rate (payments/s)"
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="PATH=JSON",
        help="extra dotted-path override, e.g. --set workload.value_scale=2.0",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-run progress lines")
    return parser


def _parse_value(raw: str) -> object:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _spec_with_cli_overrides(args: argparse.Namespace):
    spec = get_scenario(args.scenario)
    overrides: Dict[str, object] = {}
    if args.nodes is not None:
        overrides["topology.params.node_count"] = args.nodes
    if args.duration is not None:
        overrides["workload.duration"] = args.duration
    if args.arrival_rate is not None:
        overrides["workload.arrival_rate"] = args.arrival_rate
    for entry in args.set:
        if "=" not in entry:
            raise SystemExit(f"--set expects PATH=JSON, got {entry!r}")
        path, raw = entry.split("=", 1)
        overrides[path.strip()] = _parse_value(raw)
    if overrides:
        spec = spec.with_overrides(overrides)
    if args.seeds:
        spec.seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    if args.schemes:
        wanted = [part.strip() for part in args.schemes.split(",") if part.strip()]
        by_name = {scheme.name: scheme for scheme in spec.schemes}
        spec.schemes = [by_name.get(name, SchemeSpec(name=name)) for name in wanted]
    return spec


def _command_list() -> int:
    rows = [
        {"scenario": name, "description": description}
        for name, description in list_scenarios().items()
    ]
    print(format_table(rows))
    return 0


def _command_show(scenario: str) -> int:
    print(json.dumps(get_scenario(scenario).to_dict(), indent=2, sort_keys=True))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec = _spec_with_cli_overrides(args)
    runner = ScenarioRunner(spec, results_dir=args.results_dir, workers=args.workers)
    total = len(spec.expand_runs())
    print(
        f"scenario {spec.name!r}: {total} run(s) "
        f"({len(spec.seeds)} seed(s) x {max(total // max(len(spec.seeds), 1), 1)} grid point(s)), "
        f"{args.workers} worker(s) -> {runner.results_path}"
    )

    started = time.perf_counter()
    progress = None
    if not args.quiet:

        def progress(row: Dict[str, object]) -> None:
            print(f"  done {row['run_key']}")

    report = runner.run(on_row=progress)
    elapsed = time.perf_counter() - started
    print(
        f"executed {report.executed} run(s), skipped {report.skipped} already-completed, "
        f"in {elapsed:.1f}s"
    )
    print()
    print(scenario_table(report.rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher (exposed for tests)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "show":
            return _command_show(args.scenario)
        return _command_run(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
